//! Property tests for batch sweep recovery: however the fabric mangles
//! a session's arrivals, a recovery round's batched re-pulls never
//! request more symbols than the session still needs to decode, and the
//! sender-side write-off never mints credit beyond actual emissions.

use netsim::{Ctx, NodeId, SimTime};
use polyraptor::{PrConfig, ReceiverSession, SenderSession, SessionId, SessionSpec};
use proptest::prelude::*;

/// Replay an arbitrary arrival pattern into a receiver session and run
/// one full recovery round (every sender re-pulled, possibly several
/// times), returning (batch total, symbols needed at round start).
fn run_recovery_round(
    k_symbols: usize,
    n_senders: usize,
    arrivals: &[(u8, u32)],
    extra_pulls: &[u8],
    cap: u32,
    repull_rounds: usize,
) -> (u64, u64) {
    let cfg = PrConfig::paper_default();
    let spec = SessionSpec::multi_source(
        SessionId(77),
        k_symbols * cfg.symbol_size,
        (1..=n_senders as u32).map(NodeId).collect(),
        NodeId(0),
        SimTime::ZERO,
    );
    let mut rs = ReceiverSession::new(spec, NodeId(0), &cfg, 42);
    for &idx in extra_pulls {
        rs.note_pull_sent(usize::from(idx) % n_senders);
    }
    for &(idx, esi) in arrivals {
        if rs.done {
            break;
        }
        if rs.on_symbol(idx % n_senders as u8, esi, None, SimTime::ZERO) {
            rs.done = true;
        }
    }
    let needed = rs.symbols_needed();
    rs.begin_recovery_round();
    let mut total = 0u64;
    for _ in 0..repull_rounds {
        for idx in 0..n_senders {
            total += u64::from(rs.take_repull_batch(idx, cap));
        }
    }
    (total, needed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One recovery round — no matter how many senders it re-pulls or
    /// how often the pacer asks — never requests more symbols in total
    /// than the decode still needs, and no single batch exceeds the cap.
    #[test]
    fn recovery_round_never_exceeds_decode_need(
        k in 1usize..200,
        n_senders in 1usize..5,
        n_arrivals in 0usize..120,
        n_extra_pulls in 0usize..64,
        cap in 0u32..100,
        repull_rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = netsim::Pcg32::new(seed);
        let arrivals: Vec<(u8, u32)> = (0..n_arrivals)
            .map(|_| (rng.below(n_senders as u64) as u8, rng.below(4 * k as u64) as u32))
            .collect();
        let extra_pulls: Vec<u8> = (0..n_extra_pulls)
            .map(|_| rng.below(n_senders as u64) as u8)
            .collect();
        let (total, needed) =
            run_recovery_round(k, n_senders, &arrivals, &extra_pulls, cap, repull_rounds);
        prop_assert!(
            total <= needed,
            "round requested {} symbols but the decode needs only {}",
            total,
            needed
        );
    }

    /// A re-target round — opened when a host failure strands a sender —
    /// never re-pulls more symbols from the surviving replicas than the
    /// decode still needs *at the moment of stranding*: already-decoded
    /// symbols are reused, never re-fetched, and no credit is minted
    /// across replicas however many survivors the pacer re-pulls or how
    /// often.
    #[test]
    fn retarget_never_exceeds_symbols_needed_at_stranding(
        k in 1usize..200,
        n_senders in 2usize..5,
        n_arrivals in 0usize..120,
        dead in 0usize..4,
        cap in 1u32..600,
        repulls in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = PrConfig::paper_default();
        let spec = SessionSpec::multi_source(
            SessionId(78),
            k * cfg.symbol_size,
            (1..=n_senders as u32).map(NodeId).collect(),
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &cfg, 42);
        let mut rng = netsim::Pcg32::new(seed);
        for _ in 0..n_arrivals {
            if rs.done {
                break;
            }
            let idx = rng.below(n_senders as u64) as u8;
            let esi = rng.below(4 * k as u64) as u32;
            if rs.on_symbol(idx, esi, None, SimTime::ZERO) {
                rs.done = true;
            }
        }
        if rs.done {
            return Ok(());
        }
        let dead = NodeId(1 + (dead % n_senders) as u32);
        prop_assert!(rs.mark_sender_stranded(dead));
        let needed_at_stranding = rs.symbols_needed();
        rs.begin_recovery_round();
        let survivors: Vec<usize> = (0..n_senders)
            .filter(|&i| NodeId(1 + i as u32) != dead)
            .collect();
        let mut total = 0u64;
        for _ in 0..repulls {
            for &idx in &survivors {
                let batch = rs.take_retarget_batch(idx, cap);
                prop_assert!(batch <= cap, "single batch above the cap");
                total += u64::from(batch);
            }
        }
        prop_assert!(
            total <= needed_at_stranding,
            "re-target round requested {} symbols but the decode needed only {}",
            total,
            needed_at_stranding
        );
    }

    /// Across a strand → revive boundary no credit is minted: the
    /// write-off taken at stranding stands, the revived sender is
    /// re-admitted with a zero stranded estimate (its first probing
    /// re-pull is a pure nudge), and a recovery round over the full
    /// sender set — revived sender included — still never requests more
    /// symbols than the decode needs.
    #[test]
    fn revival_readmits_without_minting_credit(
        k in 1usize..200,
        n_senders in 2usize..5,
        n_arrivals in 0usize..120,
        dead in 0usize..4,
        cap in 1u32..600,
        repulls in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = PrConfig::paper_default();
        let spec = SessionSpec::multi_source(
            SessionId(79),
            k * cfg.symbol_size,
            (1..=n_senders as u32).map(NodeId).collect(),
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &cfg, 42);
        let mut rng = netsim::Pcg32::new(seed);
        for _ in 0..n_arrivals {
            if rs.done {
                break;
            }
            let idx = rng.below(n_senders as u64) as u8;
            let esi = rng.below(4 * k as u64) as u32;
            if rs.on_symbol(idx, esi, None, SimTime::ZERO) {
                rs.done = true;
            }
        }
        if rs.done {
            return Ok(());
        }
        let dead_idx = dead % n_senders;
        let dead = NodeId(1 + dead_idx as u32);
        prop_assert!(!rs.unstrand_sender(dead), "nothing to undo pre-strand");
        prop_assert!(rs.mark_sender_stranded(dead));
        let count_at_stranding = rs.report_count(dead_idx);
        prop_assert_eq!(
            rs.stranded_estimate(dead_idx), 0,
            "stranding writes the dead sender's debt off"
        );
        // The scripted repair lands: the sender is re-admitted, exactly
        // once, and the ledger is untouched — same reported count, still
        // nothing stranded, so the first probing re-pull carries a zero
        // batch (a pure liveness nudge).
        prop_assert!(rs.unstrand_sender(dead));
        prop_assert!(!rs.unstrand_sender(dead), "re-admission is idempotent");
        prop_assert!(!rs.sender_stranded(dead_idx));
        prop_assert!(rs.surviving_senders().contains(&dead));
        prop_assert_eq!(rs.report_count(dead_idx), count_at_stranding);
        prop_assert_eq!(rs.stranded_estimate(dead_idx), 0);
        rs.begin_recovery_round();
        prop_assert_eq!(
            rs.take_repull_batch(dead_idx, cap), 0,
            "revival must not mint recovery credit"
        );
        // A full recovery round over every sender — the revived one
        // included — stays bounded by the decode's remaining need.
        let needed = rs.symbols_needed();
        rs.begin_recovery_round();
        let mut total = 0u64;
        for _ in 0..repulls {
            for idx in 0..n_senders {
                total += u64::from(rs.take_repull_batch(idx, cap));
            }
        }
        prop_assert!(
            total <= needed,
            "post-revival round requested {} symbols but the decode needs only {}",
            total,
            needed
        );
    }

    /// The sender honors any (count, batch) sequence without ever
    /// believing more credit than it emitted: after arbitrary re-pull
    /// abuse, cumulative emissions stay bounded by what the pulls could
    /// legitimately license (initial window + per-pull refills).
    #[test]
    fn writeoff_never_mints_credit(
        batches in proptest::collection::vec(0u32..200, 1..12),
        seed in any::<u64>(),
    ) {
        let cfg = PrConfig::paper_default();
        let spec = SessionSpec::unicast(
            SessionId(9),
            500 * cfg.symbol_size,
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
        );
        let mut ss = SenderSession::new(spec, NodeId(0), &cfg);
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.start(NodeId(0), &cfg, &mut ctx);
        let w = ctx.queued_sends().len() as u64; // the initial window
        let mut rng = netsim::Pcg32::new(seed);
        let mut reported = 0u64;
        for &b in &batches {
            // Counts fold in loss write-offs, so an over-estimating
            // receiver can report more than was ever emitted; the
            // sender-side ceiling clamp must absorb that.
            reported = reported.max(rng.below(2 * ss.emitted() + 10));
            let mut c = Ctx::detached(SimTime::ZERO, NodeId(0));
            ss.on_pull(NodeId(1), reported, true, b, NodeId(0), &cfg, &mut c);
            // Each re-pull may refill at most one window beyond the
            // forced nudge: credit is written off, never minted.
            prop_assert!(
                (c.queued_sends().len() as u64) <= w + 1,
                "re-pull burst {} exceeds a window of {}",
                c.queued_sends().len(),
                w
            );
        }
    }
}
