//! The Polyraptor host agent: session demultiplexing, the shared pull
//! queue, pull pacing, and keep-alive sweeps with batched recovery.
//!
//! One agent runs per host and carries any number of concurrent sender-
//! and receiver-side sessions. The receiver side owns **one pull queue
//! shared by all sessions** (paper §2): every symbol or trimmed-header
//! arrival enqueues one pull, and the pacer drains the queue at one pull
//! per symbol-serialization time — so the aggregate data rate converging
//! on this host matches its access-link capacity regardless of how many
//! sessions or senders are active.
//!
//! The keep-alive sweep watches for sessions quiet past the retransmit
//! timeout. A quiet session has nothing left in flight, so its
//! pulled-minus-arrived ledger (see [`crate::receiver`]) is exactly the
//! loss a fault inflicted: the sweep re-pulls **every affected sender in
//! one batched recovery round** — each re-pull writes off the stranded
//! symbols and triggers a window-sized refill burst — instead of the
//! legacy one-nudge-per-sweep trickle whose post-fault tail was paced by
//! the 1 ms sweep interval.

use std::collections::{BTreeMap, VecDeque};

use netsim::{Agent, Ctx, Dest, FlowId, FlowSpanEvent, NodeId, Packet, SimTime, SpanMark};

use crate::config::PrConfig;
use crate::metrics::SessionRecord;
use crate::receiver::ReceiverSession;
use crate::sender::SenderSession;
use crate::session::{Initiator, SessionSpec};
use crate::wire::{PrPayload, SessionId, CONTROL_BYTES};

/// Timer token kinds (high byte of the token).
const KIND_START: u64 = 1;
const KIND_PACER: u64 = 2;
const KIND_SWEEP: u64 = 3;
const KIND_HOSTFAIL: u64 = 4;
const KIND_HOSTUP: u64 = 5;

/// Token for a session's start timer — schedule this at `spec.start` on
/// **every** participating host.
pub fn start_token(session: SessionId) -> u64 {
    KIND_START << 56 | u64::from(session.0)
}

/// Token for a host-failure notification: the control plane (in these
/// experiments, the workload layer that scripted the fault) tells this
/// host that `dead` failed. The agent strands every receive session that
/// was pulling from `dead` and re-targets the remaining need at each
/// session's surviving replicas. Schedule it at the failure instant plus
/// the control-plane convergence delay — the same lag the fabric's
/// reroute pays.
pub fn host_fail_token(dead: NodeId) -> u64 {
    KIND_HOSTFAIL << 56 | u64::from(dead.0)
}

/// Token for a host-revival notification: the control plane tells this
/// host that `revived` — previously reported via [`host_fail_token`] —
/// came back up (scripted repair). The agent re-admits the revived
/// sender to every receive session that had stranded it, then relies on
/// the keep-alive sweep's probing re-pulls as the liveness signal: no
/// pull is sent here and no credit is minted across the strand/revive
/// boundary. Schedule it at the repair instant plus the control-plane
/// convergence delay, mirroring the failure notification.
pub fn host_up_token(revived: NodeId) -> u64 {
    KIND_HOSTUP << 56 | u64::from(revived.0)
}

fn pacer_token() -> u64 {
    KIND_PACER << 56
}

fn sweep_token() -> u64 {
    KIND_SWEEP << 56
}

/// What a queued pull is for: ordinary credit, or a keep-alive recovery
/// re-pull (whose batched write-off is sized at transmission time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PullClass {
    /// Per-arrival credit pull.
    Credit,
    /// Keep-alive sweep re-pull: nudge + batched loss write-off.
    Recover,
    /// Host-failure re-target re-pull to a surviving replica: nudge +
    /// a batch sized (at transmission time) to what the decode still
    /// needs — the dead sender's remaining share moves to the survivor.
    Retarget,
}

/// The host-wide pull scheduler: one *logical* pull queue shared by all
/// sessions (paper §2), realized as per-session FIFOs drained round-robin
/// so no session can head-of-line-block another, with a per-session cap —
/// beyond one window's worth, queued pulls carry no extra information
/// (each just asks for "one more fresh symbol").
struct PullScheduler {
    per_session: BTreeMap<SessionId, VecDeque<(NodeId, PullClass)>>,
    rotation: VecDeque<SessionId>,
    cap: usize,
}

impl PullScheduler {
    fn new(cap: usize) -> Self {
        Self {
            per_session: BTreeMap::new(),
            rotation: VecDeque::new(),
            cap,
        }
    }

    /// Queue a pull towards `target`; silently coalesced when the
    /// session already has a full window of pending pulls (harmless:
    /// pulls carry cumulative counts read at transmission time).
    fn enqueue(&mut self, session: SessionId, target: NodeId, class: PullClass) {
        let q = self.per_session.entry(session).or_default();
        if q.len() >= self.cap {
            return;
        }
        if q.is_empty() {
            self.rotation.push_back(session);
        }
        q.push_back((target, class));
    }

    /// Next (session, target, class) in round-robin order.
    fn next(&mut self) -> Option<(SessionId, NodeId, PullClass)> {
        let session = self.rotation.pop_front()?;
        let q = self
            .per_session
            .get_mut(&session)
            .expect("rotation entry has a queue");
        let (target, class) = q.pop_front().expect("queued session has a pull");
        if q.is_empty() {
            self.per_session.remove(&session);
        } else {
            self.rotation.push_back(session);
        }
        Some((session, target, class))
    }

    /// Drop a session's pending pulls (on completion).
    fn forget(&mut self, session: SessionId) {
        self.per_session.remove(&session);
        self.rotation.retain(|&s| s != session);
    }
}

/// The per-host Polyraptor transport agent.
pub struct PolyraptorAgent {
    cfg: PrConfig,
    node: NodeId,
    seed: u64,
    send_sessions: BTreeMap<SessionId, SenderSession>,
    recv_sessions: BTreeMap<SessionId, ReceiverSession>,
    /// The shared pull scheduler.
    pulls: PullScheduler,
    pacer_armed: bool,
    sweep_armed: bool,
    active_recv: usize,
    /// Completed-session records (read by the experiment harness).
    pub records: Vec<SessionRecord>,
    /// (session, dead sender) strandings this host observed via
    /// host-failure notifications.
    pub stranded_sessions: u64,
    /// Strandings for which a surviving replica was re-targeted (the
    /// rest had no survivor and ride on the keep-alive sweep until the
    /// dead host revives).
    pub retargeted_sessions: u64,
    /// (session, revived sender) re-admissions via host-revival
    /// notifications — strandings that were later undone.
    pub unstranded_sessions: u64,
    /// Flow-span telemetry: session open/close and recovery marks, in
    /// the order recorded (time-ordered — marks are appended at event
    /// time). Empty unless [`PrConfig::record_spans`] is set; collected
    /// post-run by `workload::telemetry`.
    pub spans: Vec<FlowSpanEvent>,
}

impl PolyraptorAgent {
    /// New agent for `node`. The seed parameterizes this host's
    /// deterministic draws (decode-overhead sampling).
    pub fn new(node: NodeId, cfg: PrConfig, seed: u64) -> Self {
        Self {
            cfg,
            node,
            seed,
            send_sessions: BTreeMap::new(),
            recv_sessions: BTreeMap::new(),
            pulls: PullScheduler::new(cfg.pull_queue_cap),
            pacer_armed: false,
            sweep_armed: false,
            active_recv: 0,
            records: Vec::new(),
            stranded_sessions: 0,
            retargeted_sessions: 0,
            unstranded_sessions: 0,
            spans: Vec::new(),
        }
    }

    /// Append a span mark if span recording is on. `peer` is the sender
    /// involved, or `None` for session-level marks.
    fn mark_span(&mut self, at: SimTime, sid: SessionId, peer: Option<NodeId>, mark: SpanMark) {
        if self.cfg.record_spans {
            self.spans.push(FlowSpanEvent {
                at,
                session: u64::from(sid.0),
                node: self.node.0,
                peer: peer.map_or(FlowSpanEvent::NO_PEER, |p| p.0),
                mark,
            });
        }
    }

    /// Install a session this host participates in. Call before
    /// `spec.start`, and schedule [`start_token`] at `spec.start` on this
    /// host (the workload helpers do both).
    pub fn install(&mut self, spec: SessionSpec) {
        spec.validate();
        if spec.sender_index(self.node).is_some() {
            self.send_sessions
                .insert(spec.id, SenderSession::new(spec, self.node, &self.cfg));
        } else if spec.receiver_index(self.node).is_some() {
            self.active_recv += 1;
            self.recv_sessions.insert(
                spec.id,
                ReceiverSession::new(spec, self.node, &self.cfg, self.seed),
            );
        } else {
            panic!("host {} is not part of session {}", self.node.0, spec.id.0);
        }
    }

    /// Number of still-active receiver sessions (incomplete transfers).
    pub fn active_receives(&self) -> usize {
        self.active_recv
    }

    /// Access a sender session (tests/diagnostics).
    pub fn sender_session(&self, id: SessionId) -> Option<&SenderSession> {
        self.send_sessions.get(&id)
    }

    /// Protocol configuration.
    pub fn config(&self) -> &PrConfig {
        &self.cfg
    }

    // ---- pull machinery -------------------------------------------------

    fn enqueue_pull(
        &mut self,
        session: SessionId,
        target: NodeId,
        class: PullClass,
        ctx: &mut Ctx<PrPayload>,
    ) {
        self.pulls.enqueue(session, target, class);
        if !self.pacer_armed {
            self.pacer_armed = true;
            // Fire immediately; the pacer re-arms itself with spacing.
            ctx.timer_at(ctx.now, pacer_token());
        }
    }

    fn pacer_tick(&mut self, ctx: &mut Ctx<PrPayload>) {
        // Drop stale entries (completed sessions) without pacing cost.
        while let Some((sid, target, class)) = self.pulls.next() {
            let Some(rs) = self.recv_sessions.get_mut(&sid) else {
                continue;
            };
            if rs.done {
                continue;
            }
            let Some(sender_idx) = rs.spec.sender_index(target) else {
                continue;
            };
            // A re-target pull whose survivor died while the pull sat in
            // the queue must be dropped, not transmitted: it would burn
            // the round's symbol budget on a corpse and undersize the
            // batches of the remaining survivors. (Recover pulls are
            // different — when *every* sender is dead they double as the
            // sweep's revival probe, so they always go out.)
            if class == PullClass::Retarget && rs.sender_stranded(sender_idx) {
                continue;
            }
            rs.pulls_sent += 1;
            // Cumulative count and recovery batch, read *now* — a
            // delayed pull carries the freshest information at the
            // moment it leaves.
            let (nudge, batch) = match class {
                PullClass::Credit => {
                    rs.note_pull_sent(sender_idx);
                    (false, 0)
                }
                PullClass::Recover => (
                    true,
                    rs.take_repull_batch(sender_idx, self.cfg.repull_batch_cap),
                ),
                PullClass::Retarget => (
                    true,
                    rs.take_retarget_batch(sender_idx, self.cfg.repull_batch_cap),
                ),
            };
            let count = rs.report_count(sender_idx);
            ctx.send(Packet {
                src: self.node,
                dst: Dest::Host(target),
                flow: FlowId(rq::rand::hash2(
                    u64::from(sid.0),
                    u64::from(self.node.0) ^ 0x9011,
                )),
                size: CONTROL_BYTES,
                payload: PrPayload::Pull {
                    session: sid,
                    count,
                    nudge,
                    batch,
                },
            });
            // One pull per spacing interval: re-arm and stop. Recovery
            // re-pulls can each trigger a window-sized refill burst, so
            // they re-arm with the wider recovery spacing.
            let spacing = match class {
                PullClass::Credit => self.cfg.pull_spacing_ns,
                PullClass::Recover | PullClass::Retarget => self.cfg.repull_spacing_ns,
            };
            ctx.timer_after(spacing, pacer_token());
            return;
        }
        self.pacer_armed = false;
    }

    /// A host-failure notification arrived: strand every receive
    /// session pulling from `dead` and re-target the remaining need at
    /// each session's surviving replicas (one re-target re-pull per
    /// survivor; the batches are sized at transmission time and jointly
    /// capped by what the decode still needs). Sessions whose every
    /// sender is dead stay on the keep-alive sweep — only a revival can
    /// save them, and the sweep keeps probing for exactly that.
    fn on_host_failure(&mut self, dead: NodeId, ctx: &mut Ctx<PrPayload>) {
        let mut stranded: Vec<SessionId> = Vec::new();
        let mut retargets: Vec<(SessionId, NodeId)> = Vec::new();
        for (sid, rs) in self.recv_sessions.iter_mut() {
            if rs.done || !rs.mark_sender_stranded(dead) {
                continue;
            }
            self.stranded_sessions += 1;
            stranded.push(*sid);
            let survivors = rs.surviving_senders();
            if survivors.is_empty() {
                continue;
            }
            self.retargeted_sessions += 1;
            rs.begin_recovery_round();
            for s in survivors {
                retargets.push((*sid, s));
            }
        }
        for sid in stranded {
            self.mark_span(ctx.now, sid, Some(dead), SpanMark::Stranded);
        }
        for (sid, target) in retargets {
            self.mark_span(ctx.now, sid, Some(target), SpanMark::Retarget);
            self.enqueue_pull(sid, target, PullClass::Retarget, ctx);
        }
        self.arm_sweep(ctx);
    }

    /// A host-revival notification arrived: re-admit `revived` to every
    /// incomplete receive session that had stranded it, and make sure
    /// the keep-alive sweep is running. Deliberately nothing else: the
    /// sweep's probing re-pulls are the liveness signal (a revived
    /// sender answers the next probe and the self-clocked pull loop
    /// restarts from there), and the write-off minted at stranding
    /// stands — no credit crosses the strand/revive boundary.
    fn on_host_revival(&mut self, revived: NodeId, ctx: &mut Ctx<PrPayload>) {
        let mut unstranded: Vec<SessionId> = Vec::new();
        for (sid, rs) in self.recv_sessions.iter_mut() {
            if rs.done || !rs.unstrand_sender(revived) {
                continue;
            }
            self.unstranded_sessions += 1;
            unstranded.push(*sid);
        }
        for sid in unstranded {
            self.mark_span(ctx.now, sid, Some(revived), SpanMark::Unstranded);
        }
        self.arm_sweep(ctx);
    }

    fn arm_sweep(&mut self, ctx: &mut Ctx<PrPayload>) {
        if !self.sweep_armed && self.active_recv > 0 {
            self.sweep_armed = true;
            ctx.timer_after(self.cfg.sweep_interval_ns, sweep_token());
        }
    }

    fn sweep(&mut self, ctx: &mut Ctx<PrPayload>) {
        self.sweep_armed = false;
        if self.active_recv == 0 {
            return;
        }
        let now = ctx.now;
        let rto = self.cfg.retransmit_timeout_ns;
        let batched = self.cfg.repull_batch_cap > 0;
        let mut rounds: Vec<SessionId> = Vec::new();
        let mut repulls: Vec<(SessionId, NodeId)> = Vec::new();
        for (sid, rs) in self.recv_sessions.iter_mut() {
            if rs.done || now.since(rs.last_activity) < rto || now < rs.spec.start {
                continue;
            }
            // Quiet session: nothing is left in flight, so the stranded
            // estimates are live loss. Open a recovery round and re-pull
            // every affected sender (legacy mode: one round-robin nudge).
            // The pull also restarts a sender whose initial window
            // vanished entirely.
            rs.last_activity = now;
            rs.begin_recovery_round();
            rounds.push(*sid);
            if batched {
                for target in rs.recovery_targets() {
                    repulls.push((*sid, target));
                }
            } else {
                repulls.push((*sid, rs.next_sweep_target()));
            }
        }
        for sid in rounds {
            self.mark_span(now, sid, None, SpanMark::PullRound);
        }
        for (sid, target) in repulls {
            self.mark_span(now, sid, Some(target), SpanMark::Repull);
            self.enqueue_pull(sid, target, PullClass::Recover, ctx);
        }
        self.arm_sweep(ctx);
    }

    // ---- receiver-side completion ---------------------------------------

    fn complete_session(&mut self, sid: SessionId, ctx: &mut Ctx<PrPayload>) {
        let rs = self
            .recv_sessions
            .get_mut(&sid)
            .expect("completing unknown session");
        rs.done = true;
        self.active_recv -= 1;
        self.pulls.forget(sid);
        let record = rs.record(self.node, ctx.now);
        // Tell every sender this receiver is satisfied.
        for &s in rs.spec.senders.clone().iter() {
            ctx.send(Packet {
                src: self.node,
                dst: Dest::Host(s),
                flow: FlowId(rq::rand::hash2(u64::from(sid.0), 0xF14)),
                size: CONTROL_BYTES,
                payload: PrPayload::Fin { session: sid },
            });
        }
        self.records.push(record);
        self.mark_span(ctx.now, sid, None, SpanMark::Close);
    }

    fn start_as_receiver(&mut self, sid: SessionId, ctx: &mut Ctx<PrPayload>) {
        let Some(rs) = self.recv_sessions.get_mut(&sid) else {
            return;
        };
        if rs.done {
            return;
        }
        if rs.spec.initiator == Initiator::Receiver && !rs.started {
            rs.started = true;
            // Ask every replica to start streaming.
            for &s in rs.spec.senders.clone().iter() {
                ctx.send(Packet {
                    src: self.node,
                    dst: Dest::Host(s),
                    flow: FlowId(rq::rand::hash2(u64::from(sid.0), 0x0E0)),
                    size: CONTROL_BYTES,
                    payload: PrPayload::Req { session: sid },
                });
            }
        }
        self.mark_span(ctx.now, sid, None, SpanMark::Open);
        self.arm_sweep(ctx);
    }
}

impl Agent<PrPayload> for PolyraptorAgent {
    fn on_packet(&mut self, pkt: Packet<PrPayload>, ctx: &mut Ctx<PrPayload>) {
        match pkt.payload {
            PrPayload::Symbol {
                session,
                esi,
                sender_idx,
                trimmed,
                body,
            } => {
                let Some(rs) = self.recv_sessions.get_mut(&session) else {
                    return;
                };
                if rs.done {
                    return; // late tail symbols after completion
                }
                if trimmed {
                    rs.on_trimmed(sender_idx, esi, ctx.now);
                    self.enqueue_pull(session, pkt.src, PullClass::Credit, ctx);
                } else if rs.on_symbol(sender_idx, esi, body, ctx.now) {
                    self.complete_session(session, ctx);
                } else {
                    self.enqueue_pull(session, pkt.src, PullClass::Credit, ctx);
                }
                self.arm_sweep(ctx);
            }
            PrPayload::Pull {
                session,
                count,
                nudge,
                batch,
            } => {
                if let Some(ss) = self.send_sessions.get_mut(&session) {
                    ss.on_pull(pkt.src, count, nudge, batch, self.node, &self.cfg, ctx);
                }
            }
            PrPayload::Req { session } => {
                if let Some(ss) = self.send_sessions.get_mut(&session) {
                    ss.on_req(self.node, &self.cfg, ctx);
                }
            }
            PrPayload::Fin { session } => {
                let complete = match self.send_sessions.get_mut(&session) {
                    Some(ss) => ss.on_fin(pkt.src, self.node, &self.cfg, ctx),
                    None => false,
                };
                if complete {
                    self.send_sessions.remove(&session);
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<PrPayload>) {
        match token >> 56 {
            KIND_START => {
                let sid = SessionId((token & 0xFFFF_FFFF) as u32);
                if let Some(ss) = self.send_sessions.get_mut(&sid) {
                    if ss.spec.initiator == Initiator::Sender {
                        ss.start(self.node, &self.cfg, ctx);
                    }
                    // Receiver-initiated senders wait for Req.
                } else {
                    self.start_as_receiver(sid, ctx);
                }
            }
            KIND_PACER => self.pacer_tick(ctx),
            KIND_SWEEP => self.sweep(ctx),
            KIND_HOSTFAIL => {
                let dead = NodeId((token & 0xFFFF_FFFF) as u32);
                self.on_host_failure(dead, ctx);
            }
            KIND_HOSTUP => {
                let revived = NodeId((token & 0xFFFF_FFFF) as u32);
                self.on_host_revival(revived, ctx);
            }
            other => panic!("unknown timer kind {other}"),
        }
    }
}
