//! Polyraptor wire format.
//!
//! Five packet types ride the fabric:
//!
//! * [`PrPayload::Symbol`] — one encoding symbol (data class). The only
//!   packet type that can be *trimmed*: the switch drops the symbol body
//!   and priority-forwards the header so the receiver still learns a
//!   symbol was coming and can keep its pull clock running.
//! * [`PrPayload::Pull`] — receiver-paced request for one more symbol
//!   (control class, never dropped in practice).
//! * [`PrPayload::Req`] — starts a read (many-to-one) session at a
//!   sender (control).
//! * [`PrPayload::Fin`] — receiver tells a sender its part is complete
//!   (control).
//!
//! Sizes model a 64-byte header (addressing + transport fields) plus the
//! symbol body for full symbol packets.

use netsim::{SimPayload, HEADER_BYTES};

/// Globally unique transport-session identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

/// Polyraptor packet payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrPayload {
    /// An encoding symbol (or its trimmed header).
    Symbol {
        /// Session this symbol belongs to.
        session: SessionId,
        /// Encoding symbol id.
        esi: u32,
        /// Index of the sending replica (multi-source sessions).
        sender_idx: u8,
        /// True if a switch trimmed the body; only the header arrived.
        trimmed: bool,
        /// Actual symbol bytes — only materialized under the real-decoder
        /// oracle (tests/examples); `None` at simulation scale, where the
        /// packet's `size` field models the bytes on the wire.
        body: Option<Vec<u8>>,
    },
    /// Receiver-driven request for more symbols. Pulls are *cumulative*
    /// (they report how many of this sender's symbols — full or trimmed —
    /// have arrived so far), so a lost or coalesced pull costs nothing:
    /// the next one carries strictly newer information.
    Pull {
        /// Session being pulled.
        session: SessionId,
        /// Arrivals observed from the targeted sender so far, read at
        /// pull transmission time.
        count: u64,
        /// Keep-alive nudge (from the receiver's retransmit sweep):
        /// forces one emission even if the sender believes the pipe is
        /// full — recovers from lost trimmed-header accounting.
        nudge: bool,
        /// Batched loss write-off, meaningful only on nudges: the
        /// receiver's estimate of symbols it licensed from this sender
        /// that evidently died in the fabric. The write-off is folded
        /// into `count` (stranded symbols consume credit like arrivals,
        /// never beyond what the sender actually emitted — a re-pull
        /// cannot mint credit); a non-zero `batch` additionally tells
        /// the sender to refill the reopened window in one burst,
        /// healing a mass-loss event in one sweep instead of one nudge
        /// per lost symbol.
        batch: u32,
    },
    /// Read-session kick-off: "start sending me symbols".
    Req {
        /// Session to activate.
        session: SessionId,
    },
    /// Receiver is done with this sender.
    Fin {
        /// Completed session.
        session: SessionId,
    },
}

impl PrPayload {
    /// The session this packet belongs to.
    pub fn session(&self) -> SessionId {
        match self {
            PrPayload::Symbol { session, .. }
            | PrPayload::Pull { session, .. }
            | PrPayload::Req { session }
            | PrPayload::Fin { session } => *session,
        }
    }
}

impl SimPayload for PrPayload {
    fn is_control(&self) -> bool {
        match self {
            PrPayload::Symbol { trimmed, .. } => *trimmed,
            _ => true,
        }
    }

    fn trim(&self) -> Option<Self> {
        match self {
            PrPayload::Symbol {
                session,
                esi,
                sender_idx,
                ..
            } => Some(PrPayload::Symbol {
                session: *session,
                esi: *esi,
                sender_idx: *sender_idx,
                trimmed: true,
                body: None, // trimming discards the payload
            }),
            other => Some(other.clone()),
        }
    }
}

/// On-the-wire size of a full symbol packet.
pub fn symbol_packet_bytes(symbol_size: usize) -> u32 {
    HEADER_BYTES + symbol_size as u32
}

/// On-the-wire size of control packets (pull/req/fin/trimmed header).
pub const CONTROL_BYTES: u32 = HEADER_BYTES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_is_data_until_trimmed() {
        let s = PrPayload::Symbol {
            session: SessionId(1),
            esi: 9,
            sender_idx: 0,
            trimmed: false,
            body: Some(vec![1, 2, 3]),
        };
        assert!(!s.is_control());
        let t = s.trim().unwrap();
        assert!(t.is_control());
        match t {
            PrPayload::Symbol {
                esi: 9,
                trimmed: true,
                body: None,
                ..
            } => {}
            other => panic!("trim changed identity: {other:?}"),
        }
    }

    #[test]
    fn control_packets_survive_trim_unchanged() {
        let p = PrPayload::Pull {
            session: SessionId(3),
            count: 7,
            nudge: false,
            batch: 0,
        };
        assert!(p.is_control());
        assert_eq!(p.trim().unwrap(), p);
    }

    #[test]
    fn session_accessor() {
        for p in [
            PrPayload::Symbol {
                session: SessionId(5),
                esi: 0,
                sender_idx: 0,
                trimmed: false,
                body: None,
            },
            PrPayload::Pull {
                session: SessionId(5),
                count: 0,
                nudge: false,
                batch: 0,
            },
            PrPayload::Req {
                session: SessionId(5),
            },
            PrPayload::Fin {
                session: SessionId(5),
            },
        ] {
            assert_eq!(p.session(), SessionId(5));
        }
    }

    #[test]
    fn packet_sizes() {
        assert_eq!(symbol_packet_bytes(1440), 1504);
        assert_eq!(CONTROL_BYTES, 64);
    }
}
