//! # `polyraptor` — RaptorQ-coded receiver-driven data-centre transport
//!
//! Reproduction of **Polyraptor** (Alasmar, Parisis, Crowcroft —
//! SIGCOMM'18): a transport protocol for one-to-many (replication) and
//! many-to-one (multi-source fetch) transfers that combines:
//!
//! * **fountain coding** ([`rq`]): senders emit fresh encoding symbols,
//!   never retransmissions — any symbol repairs any loss;
//! * **receiver-driven flow control** (NDP-style): after one blind
//!   initial window, data moves only in response to receiver *pulls*,
//!   paced from a single queue per host so aggregate arrivals match the
//!   access link;
//! * **packet trimming**: congested switches forward headers instead of
//!   dropping, keeping the pull clock running under overload — this plus
//!   ratelessness eliminates Incast;
//! * **native multicast** for replication (one copy crosses each tree
//!   link; sender aggregates pulls from all receivers) and
//!   **coordination-free multi-source** fetch (source-range partitioning
//!   + strided repair ESIs make every replica's symbols disjoint).
//!
//! The crate plugs into [`netsim`] through [`PolyraptorAgent`] (one per
//! host). Sessions are described by [`SessionSpec`] and installed by the
//! workload layer; completed transfers surface as [`SessionRecord`]s.
//!
//! ## Example: unicast transfer over a 2-host fabric
//!
//! ```
//! use netsim::{NodeKind, SimConfig, SimTime, Simulator, Topology};
//! use polyraptor::{start_token, PolyraptorAgent, PrConfig, SessionId, SessionSpec};
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node(NodeKind::Host);
//! let s = topo.add_node(NodeKind::Switch);
//! let b = topo.add_node(NodeKind::Host);
//! topo.connect(a, s, 1_000_000_000, 10_000);
//! topo.connect(b, s, 1_000_000_000, 10_000);
//! topo.compute_routes();
//!
//! let cfg = PrConfig::paper_default();
//! let mut sim = Simulator::new(topo, SimConfig::ndp(7));
//! sim.set_agent(a, PolyraptorAgent::new(a, cfg, 1));
//! sim.set_agent(b, PolyraptorAgent::new(b, cfg, 2));
//!
//! let spec = SessionSpec::unicast(SessionId(0), 64 * 1440, a, b, SimTime::ZERO);
//! sim.agent_mut(a).install(spec.clone());
//! sim.agent_mut(b).install(spec.clone());
//! sim.schedule_timer(a, spec.start, start_token(spec.id));
//! sim.schedule_timer(b, spec.start, start_token(spec.id));
//!
//! sim.run_to_completion();
//! let rec = &sim.agent(b).records[0];
//! assert_eq!(rec.data_len, 64 * 1440);
//! assert!(rec.goodput_gbps() > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod config;
pub mod metrics;
pub mod oracle;
pub mod receiver;
pub mod sender;
pub mod session;
pub mod wire;

pub use agent::{host_fail_token, host_up_token, start_token, PolyraptorAgent};
pub use config::{MulticastPull, OracleMode, PrConfig};
pub use metrics::SessionRecord;
pub use oracle::{required_overhead, session_object, Oracle};
pub use receiver::ReceiverSession;
pub use rq::CodeMode;
pub use sender::SenderSession;
pub use session::{Initiator, SessionSpec, SessionState};
pub use wire::{symbol_packet_bytes, PrPayload, SessionId, CONTROL_BYTES};
