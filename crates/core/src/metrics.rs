//! Per-session transfer records, produced by receivers on completion,
//! and the shared percentile helper every latency summary in the
//! workspace uses.

use netsim::{NodeId, SimTime};

use crate::wire::SessionId;

/// Nearest-rank percentile of a pre-sorted slice: the element at index
/// `round(p/100 · (len-1))`. Order-agnostic — on an ascending sort `p`
/// is the usual percentile, on a descending sort it selects from the
/// top. The single implementation behind `RecoveryStats` and the
/// workload rank curves (previously duplicated in both).
///
/// # Panics
/// Panics on an empty slice or `p` outside `0.0..=100.0`.
pub fn percentile_sorted<T: Copy>(sorted: &[T], p: f64) -> T {
    assert!(!sorted.is_empty(), "percentile of an empty set");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    sorted[((p / 100.0) * (sorted.len() - 1) as f64).round() as usize]
}

/// What one receiver measured for one completed session.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// The session.
    pub session: SessionId,
    /// The receiver that recorded this.
    pub node: NodeId,
    /// Object size in bytes.
    pub data_len: usize,
    /// When the transfer was initiated (session start time).
    pub start: SimTime,
    /// When this receiver could reconstruct the object.
    pub finish: SimTime,
    /// Background session (excluded from headline metrics).
    pub background: bool,
    /// Distinct symbols collected.
    pub symbols: usize,
    /// Trimmed headers observed (congestion signal count).
    pub trimmed_seen: u64,
    /// Pull packets issued for this session.
    pub pulls_sent: u64,
    /// Senders that died (host failure) and were written off mid-session
    /// — non-zero means the transfer survived on replica redundancy.
    pub retargets: u32,
    /// Symbols re-pulled from surviving replicas on re-target (bounded
    /// by what the decode still needed when the sender died).
    pub retarget_symbols: u64,
}

impl SessionRecord {
    /// Transfer duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.finish - self.start
    }

    /// Application-level goodput in Gbit/s: object bytes over transfer
    /// time — the y-axis of every figure in the paper.
    pub fn goodput_gbps(&self) -> f64 {
        let ns = self.duration_ns();
        assert!(ns > 0, "zero-duration transfer");
        (self.data_len as f64 * 8.0) / ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bytes: usize, dur_ns: u64) -> SessionRecord {
        SessionRecord {
            session: SessionId(1),
            node: NodeId(0),
            data_len: bytes,
            start: SimTime::from_nanos(1000),
            finish: SimTime::from_nanos(1000 + dur_ns),
            background: false,
            symbols: 0,
            trimmed_seen: 0,
            pulls_sent: 0,
            retargets: 0,
            retarget_symbols: 0,
        }
    }

    #[test]
    fn goodput_line_rate() {
        // 4 MB in exactly its serialization time at 1 Gbps.
        let bytes = 4 << 20;
        let r = record(bytes, (bytes as u64) * 8);
        assert!((r.goodput_gbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_third_rate() {
        let bytes = 3 << 20;
        let r = record(bytes, (bytes as u64) * 8 * 3);
        assert!((r.goodput_gbps() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero-duration")]
    fn zero_duration_panics() {
        record(100, 0).goodput_gbps();
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile_sorted(&v, 0.0), 0);
        assert_eq!(percentile_sorted(&v, 50.0), 50);
        assert_eq!(percentile_sorted(&v, 99.0), 99);
        assert_eq!(percentile_sorted(&v, 100.0), 100);
        // Rounding, not truncation: p50 of 4 elements picks index 2.
        assert_eq!(percentile_sorted(&[10, 20, 30, 40], 50.0), 30);
        assert_eq!(percentile_sorted(&[1.5f64], 99.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile_sorted::<u64>(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        percentile_sorted(&[1u64], 101.0);
    }
}
