//! Symbol-collection oracles: when has a receiver gathered enough?
//!
//! Two interchangeable models (DESIGN.md substitution S2):
//!
//! * [`Oracle::Counting`] counts *distinct* ESIs and declares success per
//!   the RaptorQ overhead-failure model: with `k + o` distinct symbols
//!   decoding fails with probability `10^-(2(o+1))` (≈1% at +0, 10⁻⁴ at
//!   +1, 10⁻⁶ at +2 — the figure the paper quotes). The required
//!   overhead is drawn once per session from a deterministic
//!   session-keyed hash, so runs are reproducible. A session whose
//!   source symbols all arrive completes via the systematic fast path
//!   regardless (no decode happens at all).
//! * [`Oracle::Real`] runs the actual [`rq`] decoder over real bytes and
//!   only reports completion when decoding genuinely succeeds. Tests use
//!   it to validate the counting model.

use std::collections::HashSet;

use rq::{CodeMode, Decoder, Encoder};

use crate::wire::SessionId;

/// Deterministic per-session draw of the extra symbols needed beyond
/// `k`, following `P(need > o) = 10^-(2(o+1))`.
pub fn required_overhead(session: SessionId, seed: u64) -> usize {
    let h = rq::rand::hash2(seed ^ 0x0BAC_1E55, u64::from(session.0));
    // Map to a uniform in [0,1).
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let mut o = 0usize;
    let mut p = 1e-2f64;
    while u < p {
        o += 1;
        p *= 1e-2;
        if o >= 5 {
            break; // beyond 10⁻¹⁰: numerically irrelevant, cap the loop
        }
    }
    o
}

/// Receiver-side completion oracle.
pub enum Oracle {
    /// Distinct-symbol counting with the RaptorQ failure model.
    Counting {
        /// Source symbols in the object.
        k: usize,
        /// Extra symbols required for this session's (virtual) decode.
        required_overhead: usize,
        /// Distinct ESIs seen.
        seen: HashSet<u32>,
        /// Distinct *source* ESIs seen (systematic fast path).
        source_seen: usize,
    },
    /// Real decoding of real bytes.
    Real {
        /// The in-progress decoder.
        decoder: Decoder,
        /// Expected plaintext, kept to verify correctness end-to-end.
        expected: Vec<u8>,
        /// Whether decode already succeeded.
        done: bool,
    },
}

impl Oracle {
    /// Counting oracle for an object of `k` symbols.
    pub fn counting(session: SessionId, k: usize, seed: u64) -> Self {
        Oracle::Counting {
            k,
            required_overhead: required_overhead(session, seed),
            seen: HashSet::new(),
            source_seen: 0,
        }
    }

    /// Real oracle: builds the decoder for the canonical session object
    /// (see [`session_object`]) under the given code construction mode —
    /// it must match the sender's mode or decoding fails outright.
    pub fn real(session: SessionId, data_len: usize, symbol_size: usize, mode: CodeMode) -> Self {
        let data = session_object(session, data_len);
        let enc =
            Encoder::with_mode(&data, symbol_size, mode).expect("session object is non-empty");
        Oracle::Real {
            decoder: Decoder::new(enc.params()),
            expected: data,
            done: false,
        }
    }

    /// Record a received symbol. `bytes` is `None` under counting mode
    /// (the simulation does not materialize symbol bodies at scale).
    /// Returns `true` if the object just became recoverable.
    pub fn add(&mut self, esi: u32, bytes: Option<Vec<u8>>) -> bool {
        match self {
            Oracle::Counting {
                k,
                required_overhead,
                seen,
                source_seen,
            } => {
                if seen.insert(esi) && (esi as usize) < *k {
                    *source_seen += 1;
                }
                // Complete on the systematic fast path or at k+overhead
                // distinct symbols.
                *source_seen == *k || seen.len() >= *k + *required_overhead
            }
            Oracle::Real {
                decoder,
                expected,
                done,
            } => {
                if *done {
                    return true;
                }
                let bytes = bytes.expect("real oracle requires symbol bytes");
                decoder.push(esi, bytes);
                if decoder.symbols_received() >= decoder.params().k {
                    if let Ok(data) = decoder.try_decode() {
                        assert_eq!(&data, expected, "real oracle decoded wrong bytes");
                        *done = true;
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Distinct symbols collected so far.
    pub fn symbols_received(&self) -> usize {
        match self {
            Oracle::Counting { seen, .. } => seen.len(),
            Oracle::Real { decoder, .. } => decoder.symbols_received(),
        }
    }

    /// Upper bound on the fresh symbols still needed to recover the
    /// object: the decode threshold minus the distinct symbols already
    /// collected. Batch sweep recovery caps its re-pull bursts with this
    /// so a recovery round never requests more symbols than the session
    /// could possibly use.
    pub fn symbols_needed(&self) -> u64 {
        match self {
            Oracle::Counting {
                k,
                required_overhead,
                seen,
                ..
            } => (*k + *required_overhead).saturating_sub(seen.len()) as u64,
            // The real decoder may need a little overhead beyond k, so
            // the bound stays at least 1 until decode succeeds.
            Oracle::Real { decoder, done, .. } => {
                if *done {
                    0
                } else {
                    (decoder
                        .params()
                        .k
                        .saturating_sub(decoder.symbols_received()) as u64)
                        .max(1)
                }
            }
        }
    }
}

/// The canonical (deterministic) object bytes for a session — what a
/// "real" sender would read from storage. Both the real oracle and the
/// real-mode sender generate the same bytes from the session id.
pub fn session_object(session: SessionId, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = u64::from(session.0) ^ 0xDA7A_B10C;
    while out.len() < len {
        state = rq::rand::mix64(state);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_distribution_shape() {
        // ~99% of sessions need +0, ~1% need more; none need > 5.
        let n = 20_000u32;
        let mut extra = [0usize; 6];
        for s in 0..n {
            let o = required_overhead(SessionId(s), 7);
            extra[o.min(5)] += 1;
        }
        let frac0 = extra[0] as f64 / n as f64;
        assert!(frac0 > 0.985 && frac0 < 0.995, "P(+0) = {frac0}");
        assert!(extra[1] > 0, "some sessions should need +1");
        assert!(
            extra[3] + extra[4] + extra[5] == 0,
            "overhead beyond +2 at n=20k is absurd"
        );
    }

    #[test]
    fn overhead_deterministic() {
        assert_eq!(
            required_overhead(SessionId(12), 3),
            required_overhead(SessionId(12), 3)
        );
    }

    #[test]
    fn counting_systematic_fast_path() {
        // Even a session that drew +1 overhead completes when all k
        // source symbols arrive (no decode needed at all).
        let mut o = Oracle::Counting {
            k: 5,
            required_overhead: 1,
            seen: HashSet::new(),
            source_seen: 0,
        };
        for esi in 0..4 {
            assert!(!o.add(esi, None));
        }
        assert!(o.add(4, None), "all source symbols ⇒ complete");
    }

    #[test]
    fn counting_overhead_path() {
        let mut o = Oracle::Counting {
            k: 5,
            required_overhead: 1,
            seen: HashSet::new(),
            source_seen: 0,
        };
        // Lose source symbol 0; feed repairs instead.
        for esi in 1..5 {
            assert!(!o.add(esi, None));
        }
        assert!(!o.add(100, None), "k distinct but +1 required");
        assert!(o.add(101, None), "k+1 distinct ⇒ complete");
    }

    #[test]
    fn counting_ignores_duplicates() {
        let mut o = Oracle::Counting {
            k: 3,
            required_overhead: 0,
            seen: HashSet::new(),
            source_seen: 0,
        };
        assert!(!o.add(7, None));
        assert!(!o.add(7, None));
        assert_eq!(o.symbols_received(), 1);
    }

    #[test]
    fn real_oracle_end_to_end() {
        let session = SessionId(77);
        let len = 10 * 512;
        let data = session_object(session, len);
        let enc = Encoder::new(&data, 512).unwrap();
        let k = enc.params().k as u32;
        let mut o = Oracle::real(session, len, 512, CodeMode::Systematic);
        // Drop one source symbol, push the rest plus two repairs.
        let mut done = false;
        for esi in 1..k {
            done = o.add(esi, Some(enc.symbol(esi)));
        }
        assert!(!done);
        done = o.add(k + 4, Some(enc.symbol(k + 4)));
        let done2 = o.add(k + 9, Some(enc.symbol(k + 9)));
        assert!(done || done2, "k+1 distinct symbols should decode");
    }

    #[test]
    fn session_object_deterministic_and_distinct() {
        let a = session_object(SessionId(1), 1000);
        let b = session_object(SessionId(1), 1000);
        let c = session_object(SessionId(2), 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
    }
}
