//! Protocol configuration.

use netsim::serialization_ns;
use rq::CodeMode;

/// How a multicast sender converts receiver pulls into group emissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulticastPull {
    /// Strict aggregation per the paper's §2 text: "multicasts a new
    /// symbol only after **all** receivers have sent one \[pull\]". The
    /// group advances at the instantaneously slowest receiver's pull
    /// rate. Under cross-traffic this couples every receiver to every
    /// other receiver's congestion (measured in `benches/ablations.rs`);
    /// the paper's own straggler-detachment "current work" exists to
    /// mitigate exactly this.
    All,
    /// Pull coalescing: one emission consumes every outstanding credit,
    /// so the group is paced by the *fastest* receiver. Receivers whose
    /// access links can't keep up lose the excess to packet trimming and
    /// complete at their own pace — ratelessness makes the lost symbols
    /// free to replace. This is the only mode that reproduces Figure
    /// 1a's near-equal 1-/3-replica curves (see EXPERIMENTS.md), so it
    /// is the default.
    Any,
}

/// How a receiver decides that a session's data is recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Count distinct symbols and apply the RaptorQ failure model
    /// (succeed at `k+o` extra symbols with failure probability
    /// `10^-(2(o+1))`). This is what packet-level evaluations — including
    /// the paper's OMNeT++ model — measure; decode CPU cost is explicitly
    /// out of the paper's scope. Substitution S2 in DESIGN.md.
    Counting,
    /// Run the real `rq` decoder on actual symbol bytes. Used by tests
    /// and examples to validate the counting model end-to-end.
    Real,
}

/// Polyraptor protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct PrConfig {
    /// Symbol (payload) size in bytes. With a 64-byte header this should
    /// keep full symbol packets at or under the fabric MTU.
    pub symbol_size: usize,
    /// Initial window: symbols pushed blind at line rate during the
    /// first RTT before pulls take over (NDP-style).
    pub initial_window: u32,
    /// Receiver pull pacing interval in nanoseconds: one pull per
    /// full-symbol serialization time keeps aggregate arrivals at link
    /// capacity.
    pub pull_spacing_ns: u64,
    /// Oracle mode (see [`OracleMode`]).
    pub oracle: OracleMode,
    /// Code construction mode for real-oracle sessions (see
    /// [`rq::CodeMode`]). [`CodeMode::Systematic`] (the default) encodes
    /// without a solve and gives receivers the zero-copy decode fast
    /// path; [`CodeMode::Legacy`] keeps the solve-based construction for
    /// A/B comparison. Under [`OracleMode::Counting`] no symbol bytes are
    /// materialized, so the mode has no effect on packet-level results —
    /// emission order and ESI spaces are identical in both modes.
    pub code_mode: CodeMode,
    /// Re-pull a quiet session after this many nanoseconds (loss of all
    /// in-flight anchors is rare but must not wedge a session).
    pub retransmit_timeout_ns: u64,
    /// How often the keep-alive sweep runs.
    pub sweep_interval_ns: u64,
    /// Multicast straggler detection (the paper's "current work"
    /// extension): detach a receiver whose pull count lags the fastest
    /// receiver by more than this many symbols. `None` disables.
    pub straggler_lag: Option<u64>,
    /// Multicast pull-to-emission policy (see [`MulticastPull`]).
    pub multicast: MulticastPull,
    /// Cap on queued pulls per session at a receiver: beyond one
    /// window's worth, extra pulls carry no information (every pull
    /// requests "one more fresh symbol").
    pub pull_queue_cap: usize,
    /// Batch sweep recovery: the most stranded symbols one keep-alive
    /// re-pull may write off and re-request from a sender. A fault that
    /// strands a pile of pulled symbols is healed by a single batched
    /// re-pull instead of one sweep nudge per lost symbol (the
    /// sweep-paced post-fault tail the ROADMAP called out). The refill
    /// burst a write-off triggers is window-capped regardless, so the
    /// cap bounds accounting drift, not burst size — the default is
    /// deliberately generous. `0` disables batching and falls back to
    /// the legacy single-nudge sweep.
    pub repull_batch_cap: u32,
    /// Pacer spacing after a batched recovery re-pull leaves the host
    /// (regular pulls use [`PrConfig::pull_spacing_ns`]): each re-pull
    /// can trigger up to a window of emissions, so consecutive re-pulls
    /// — e.g. to the several replicas of a multi-source session — are
    /// spread out to keep the recovery burst access-link-shaped.
    pub repull_spacing_ns: u64,
    /// Record per-session flow spans (open/close plus pull-round,
    /// re-pull, re-target, and stranding marks) into
    /// [`crate::agent::PolyraptorAgent::spans`] for telemetry export.
    /// Off by default: spans are plain appends on session-rare paths —
    /// never the per-symbol path — and consume no randomness, so
    /// enabling them cannot perturb a run, only remember it.
    pub record_spans: bool,
}

impl PrConfig {
    /// Defaults matching the paper's evaluation fabric (1 Gbps links,
    /// 10 µs delay, 250-host fat-tree):
    ///
    /// * 1440-byte symbols → 1504-byte symbol packets;
    /// * initial window of one inter-pod BDP (≈16 symbol packets);
    /// * pulls paced at one per symbol serialization time.
    pub fn paper_default() -> Self {
        let symbol_size = 1440usize;
        let rate = 1_000_000_000u64;
        let pkt = crate::wire::symbol_packet_bytes(symbol_size);
        Self {
            symbol_size,
            initial_window: 16,
            pull_spacing_ns: serialization_ns(pkt, rate),
            oracle: OracleMode::Counting,
            code_mode: CodeMode::Systematic,
            retransmit_timeout_ns: 2_000_000, // 2 ms
            sweep_interval_ns: 1_000_000,     // 1 ms
            straggler_lag: None,
            multicast: MulticastPull::Any,
            pull_queue_cap: 32,
            repull_batch_cap: 512,
            repull_spacing_ns: 4 * serialization_ns(pkt, rate),
            record_spans: false,
        }
    }

    /// Same as [`PrConfig::paper_default`] but with the real decoder —
    /// for tests and examples on small objects.
    pub fn real_oracle() -> Self {
        Self {
            oracle: OracleMode::Real,
            ..Self::paper_default()
        }
    }

    /// Same as [`PrConfig::real_oracle`] but with the legacy solve-based
    /// code construction — the A/B baseline for the systematic fast path.
    pub fn real_oracle_legacy_code() -> Self {
        Self {
            code_mode: CodeMode::Legacy,
            ..Self::real_oracle()
        }
    }

    /// Number of source symbols for an object of `len` bytes.
    pub fn k_for(&self, len: usize) -> usize {
        assert!(len > 0, "empty objects cannot be transferred");
        len.div_ceil(self.symbol_size)
    }

    /// The per-sender in-flight window of a session: each of `n_senders`
    /// replicas keeps its share of [`PrConfig::initial_window`], so the
    /// receiver's aggregate in-flight is one window; short objects cap
    /// at `k + 2` (enough to finish in one RTT). Senders size their
    /// emission window with this, and receivers use the same number to
    /// seed their pulled-minus-arrived loss accounting.
    pub fn per_sender_window(&self, data_len: usize, n_senders: usize) -> u64 {
        let k = self.k_for(data_len) as u32;
        let per_sender = u32::max(1, self.initial_window.div_ceil(n_senders as u32));
        u64::from(per_sender.min(k + 2))
    }
}

impl Default for PrConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = PrConfig::paper_default();
        assert_eq!(c.symbol_size, 1440);
        // 1504 bytes at 1 Gbps = 12.032 µs per pull.
        assert_eq!(c.pull_spacing_ns, 12_032);
    }

    #[test]
    fn k_for_rounds_up() {
        let c = PrConfig::paper_default();
        assert_eq!(c.k_for(1), 1);
        assert_eq!(c.k_for(1440), 1);
        assert_eq!(c.k_for(1441), 2);
        assert_eq!(c.k_for(4 << 20), 2913); // the paper's 4 MB blocks
    }

    #[test]
    #[should_panic(expected = "empty objects")]
    fn k_for_zero_panics() {
        PrConfig::paper_default().k_for(0);
    }
}
