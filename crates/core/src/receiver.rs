//! Receiver-side session state.
//!
//! Receivers drive the transfer: every symbol arrival — full *or trimmed*
//! — earns the session one slot in the host's shared pull queue, and the
//! agent paces pulls out of that queue at the access-link rate. A lost or
//! trimmed symbol is never re-requested; the next fresh symbol replaces
//! it (rateless property), so the pull clock never stalls on loss.

use netsim::{NodeId, SimTime};

use crate::config::{OracleMode, PrConfig};
use crate::metrics::SessionRecord;
use crate::oracle::Oracle;
use crate::session::SessionSpec;

/// Receiver-side state for one session.
pub struct ReceiverSession {
    /// Shared descriptor.
    pub spec: SessionSpec,
    oracle: Oracle,
    /// Cumulative arrivals (full + trimmed) per sender index — the
    /// counts pulls report back (read at pull transmission time).
    arrivals_from: Vec<u64>,
    /// Set once the start timer fired or the first symbol arrived.
    pub started: bool,
    /// Object recovered; FINs sent.
    pub done: bool,
    /// Last time anything arrived for this session (keep-alive sweep).
    pub last_activity: SimTime,
    /// Pulls issued for this session.
    pub pulls_sent: u64,
    /// Trimmed headers seen (congestion indicator).
    pub trimmed_seen: u64,
    /// Round-robin cursor over senders for keep-alive re-pulls.
    pub rr: usize,
}

impl ReceiverSession {
    /// Build receiver state for `node`'s role in `spec`.
    pub fn new(spec: SessionSpec, node: NodeId, cfg: &PrConfig, seed: u64) -> Self {
        assert!(
            spec.receiver_index(node).is_some(),
            "node is not a receiver"
        );
        let k = cfg.k_for(spec.data_len);
        let oracle = match cfg.oracle {
            OracleMode::Counting => Oracle::counting(spec.id, k, seed),
            OracleMode::Real => Oracle::real(spec.id, spec.data_len, cfg.symbol_size),
        };
        let n_senders = spec.senders.len();
        Self {
            oracle,
            arrivals_from: vec![0; n_senders],
            started: false,
            done: false,
            last_activity: spec.start,
            pulls_sent: 0,
            trimmed_seen: 0,
            rr: 0,
            spec,
        }
    }

    /// Record a full symbol from sender `sender_idx`; returns `true`
    /// when the object just became recoverable.
    pub fn on_symbol(
        &mut self,
        sender_idx: u8,
        esi: u32,
        body: Option<Vec<u8>>,
        now: SimTime,
    ) -> bool {
        debug_assert!(!self.done);
        self.started = true;
        self.last_activity = now;
        self.count_arrival(sender_idx);
        self.oracle.add(esi, body)
    }

    /// Record a trimmed header (no coding progress, but it advances the
    /// arrival count — the sender must learn the pipe drained).
    pub fn on_trimmed(&mut self, sender_idx: u8, now: SimTime) {
        self.started = true;
        self.last_activity = now;
        self.trimmed_seen += 1;
        self.count_arrival(sender_idx);
    }

    fn count_arrival(&mut self, sender_idx: u8) {
        let idx = usize::from(sender_idx).min(self.arrivals_from.len() - 1);
        self.arrivals_from[idx] += 1;
    }

    /// Cumulative arrivals from the sender at `spec.senders[idx]` — the
    /// value a pull to that sender carries.
    pub fn arrivals_from(&self, idx: usize) -> u64 {
        self.arrivals_from[idx]
    }

    /// Distinct symbols collected.
    pub fn symbols_received(&self) -> usize {
        self.oracle.symbols_received()
    }

    /// The next sender to target with a keep-alive pull (round-robin).
    pub fn next_sweep_target(&mut self) -> NodeId {
        let t = self.spec.senders[self.rr % self.spec.senders.len()];
        self.rr += 1;
        t
    }

    /// Produce the completion record (call exactly once, at completion).
    pub fn record(&self, node: NodeId, finish: SimTime) -> SessionRecord {
        SessionRecord {
            session: self.spec.id,
            node,
            data_len: self.spec.data_len,
            start: self.spec.start,
            finish,
            background: self.spec.background,
            symbols: self.symbols_received(),
            trimmed_seen: self.trimmed_seen,
            pulls_sent: self.pulls_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::SessionId;

    fn recv_session(k_bytes: usize) -> ReceiverSession {
        let spec = SessionSpec::unicast(SessionId(3), k_bytes, NodeId(1), NodeId(0), SimTime::ZERO);
        ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 42)
    }

    #[test]
    fn completes_on_all_source_symbols() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(5 * cfg.symbol_size);
        let mut done = false;
        for esi in 0..5u32 {
            done = rs.on_symbol(0, esi, None, SimTime::from_nanos(esi as u64));
        }
        assert!(done, "systematic completion at k source symbols");
        assert_eq!(rs.arrivals_from(0), 5);
    }

    #[test]
    fn trimmed_headers_count_as_arrivals_not_progress() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(5 * cfg.symbol_size);
        rs.on_trimmed(0, SimTime::from_micros(7));
        assert_eq!(rs.trimmed_seen, 1);
        assert_eq!(rs.symbols_received(), 0);
        assert_eq!(
            rs.arrivals_from(0),
            1,
            "trimmed headers advance the pull clock"
        );
        assert_eq!(rs.last_activity, SimTime::from_micros(7));
    }

    #[test]
    fn per_sender_arrival_accounting() {
        let spec = SessionSpec::multi_source(
            SessionId(4),
            10 * 1440,
            vec![NodeId(1), NodeId(2)],
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 1);
        rs.on_symbol(0, 0, None, SimTime::ZERO);
        rs.on_symbol(1, 5, None, SimTime::ZERO);
        rs.on_symbol(1, 6, None, SimTime::ZERO);
        assert_eq!(rs.arrivals_from(0), 1);
        assert_eq!(rs.arrivals_from(1), 2);
    }

    #[test]
    fn sweep_targets_round_robin() {
        let spec = SessionSpec::multi_source(
            SessionId(3),
            1440,
            vec![NodeId(1), NodeId(2), NodeId(3)],
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 1);
        let t: Vec<u32> = (0..4).map(|_| rs.next_sweep_target().0).collect();
        assert_eq!(t, vec![1, 2, 3, 1]);
    }

    #[test]
    fn record_captures_counters() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(2 * cfg.symbol_size);
        rs.on_symbol(0, 0, None, SimTime::from_micros(1));
        rs.on_trimmed(0, SimTime::from_micros(2));
        rs.pulls_sent = 5;
        let rec = rs.record(NodeId(0), SimTime::from_micros(100));
        assert_eq!(rec.symbols, 1);
        assert_eq!(rec.trimmed_seen, 1);
        assert_eq!(rec.pulls_sent, 5);
        assert_eq!(rec.duration_ns(), 100_000);
    }
}
