//! Receiver-side session state.
//!
//! Receivers drive the transfer: every symbol arrival — full *or trimmed*
//! — earns the session one slot in the host's shared pull queue, and the
//! agent paces pulls out of that queue at the access-link rate. A lost or
//! trimmed symbol is never re-requested; the next fresh symbol replaces
//! it (rateless property), so the pull clock never stalls on loss.
//!
//! The receiver also keeps **pulled-minus-arrived loss accounting** per
//! sender: it knows how many symbols it licensed (the blind initial
//! window plus one per pull) and how many arrived. When a session goes
//! quiet past the retransmit timeout, nothing is left in flight, so the
//! difference is exactly the symbols a fault stranded — the estimate
//! that sizes the keep-alive sweep's batched recovery re-pulls (see
//! [`ReceiverSession::take_repull_batch`]).

use netsim::{NodeId, SimTime};

use crate::config::{OracleMode, PrConfig};
use crate::metrics::SessionRecord;
use crate::oracle::Oracle;
use crate::session::{SessionSpec, SessionState};

/// Receiver-side state for one session.
pub struct ReceiverSession {
    /// Shared descriptor.
    pub spec: SessionSpec,
    oracle: Oracle,
    /// Cumulative arrivals (full + trimmed) per sender index — the
    /// counts pulls report back (read at pull transmission time).
    arrivals_from: Vec<u64>,
    /// Symbols licensed per sender: the expected blind initial window,
    /// plus one per credit pull, plus `batch + 1` per recovery re-pull
    /// (the refill and the forced nudge emission). The ledger
    /// `granted − arrivals − written_off` evaluated on a quiet session
    /// estimates symbols stranded by loss. Clamped so the estimate never
    /// goes negative when a sender over-delivers (multicast groups are
    /// paced by their fastest receiver).
    granted: Vec<u64>,
    /// Cumulative loss write-offs per sender. Folded into every reported
    /// pull count ([`ReceiverSession::report_count`]): the sender's
    /// credit clock is `max` over reported counts, so counting stranded
    /// symbols as consumed is what re-opens its window — and keeps the
    /// self-clocked pull loop running at line rate afterwards, because
    /// subsequent per-arrival counts continue from the advanced clock
    /// instead of lagging it by the never-arriving symbols.
    written_off: Vec<u64>,
    /// High-water mark of per-sender emission ordinals, inverted from
    /// observed ESIs (senders emit their source partition in order, then
    /// their strided repair sequence). A lower bound on what the sender
    /// actually emitted — it catches losses the licensing ledger cannot
    /// see, e.g. group emissions a faster co-receiver pulled that died
    /// on this receiver's tree branch.
    emitted_seen: Vec<u64>,
    /// Per-sender source partitions `[lo, hi)` (for the ESI inversion).
    partitions: Vec<(u64, u64)>,
    /// Source symbols in the object (for the ESI inversion).
    k: u64,
    /// Write-off symbols already requested in the current recovery round
    /// (reset each sweep) — caps a round's total at what the decode
    /// still needs.
    repull_round: u64,
    /// Senders known dead (host failure): excluded from sweeps and
    /// recovery targets; their remaining share rides on the survivors.
    /// Cleared again by [`ReceiverSession::unstrand_sender`] when the
    /// control plane reports the host revived.
    stranded: Vec<bool>,
    /// Senders stranded over this session's lifetime (metrics).
    retargets: u32,
    /// Symbols re-pulled from surviving replicas on re-target (metrics;
    /// never exceeds what the decode still needed at stranding time).
    retarget_symbols: u64,
    /// Set once the start timer fired or the first symbol arrived.
    pub started: bool,
    /// Object recovered; FINs sent.
    pub done: bool,
    /// Last time anything arrived for this session (keep-alive sweep).
    pub last_activity: SimTime,
    /// Pulls issued for this session.
    pub pulls_sent: u64,
    /// Trimmed headers seen (congestion indicator).
    pub trimmed_seen: u64,
    /// Round-robin cursor over senders for keep-alive re-pulls.
    pub rr: usize,
}

impl ReceiverSession {
    /// Build receiver state for `node`'s role in `spec`.
    pub fn new(spec: SessionSpec, node: NodeId, cfg: &PrConfig, seed: u64) -> Self {
        assert!(
            spec.receiver_index(node).is_some(),
            "node is not a receiver"
        );
        let k = cfg.k_for(spec.data_len);
        let oracle = match cfg.oracle {
            OracleMode::Counting => Oracle::counting(spec.id, k, seed),
            OracleMode::Real => {
                Oracle::real(spec.id, spec.data_len, cfg.symbol_size, cfg.code_mode)
            }
        };
        let n_senders = spec.senders.len();
        let share = cfg.per_sender_window(spec.data_len, n_senders);
        let partitions = (0..n_senders)
            .map(|i| {
                let (lo, hi) = crate::session::source_partition(k, n_senders, i);
                (lo as u64, hi as u64)
            })
            .collect();
        Self {
            oracle,
            arrivals_from: vec![0; n_senders],
            granted: vec![share; n_senders],
            written_off: vec![0; n_senders],
            emitted_seen: vec![0; n_senders],
            partitions,
            k: k as u64,
            repull_round: 0,
            stranded: vec![false; n_senders],
            retargets: 0,
            retarget_symbols: 0,
            started: false,
            done: false,
            last_activity: spec.start,
            pulls_sent: 0,
            trimmed_seen: 0,
            rr: 0,
            spec,
        }
    }

    /// Record a full symbol from sender `sender_idx`; returns `true`
    /// when the object just became recoverable.
    pub fn on_symbol(
        &mut self,
        sender_idx: u8,
        esi: u32,
        body: Option<Vec<u8>>,
        now: SimTime,
    ) -> bool {
        debug_assert!(!self.done);
        self.started = true;
        self.last_activity = now;
        self.count_arrival(sender_idx);
        self.note_esi(sender_idx, esi);
        self.oracle.add(esi, body)
    }

    /// Record a trimmed header (no coding progress, but it advances the
    /// arrival count — the sender must learn the pipe drained — and its
    /// ESI still raises the emission high-water mark).
    pub fn on_trimmed(&mut self, sender_idx: u8, esi: u32, now: SimTime) {
        self.started = true;
        self.last_activity = now;
        self.trimmed_seen += 1;
        self.count_arrival(sender_idx);
        self.note_esi(sender_idx, esi);
    }

    /// Invert an observed ESI to the sender's emission ordinal (senders
    /// emit their source partition in order, then repairs strided by the
    /// sender count) and raise that sender's high-water mark. ESIs
    /// outside the sender's sequence (corruption would be a bug, not a
    /// runtime condition) are ignored.
    fn note_esi(&mut self, sender_idx: u8, esi: u32) {
        let idx = usize::from(sender_idx).min(self.partitions.len() - 1);
        let s = self.partitions.len() as u64;
        let (lo, hi) = self.partitions[idx];
        let esi = u64::from(esi);
        let ordinal = if esi < self.k {
            if esi < lo || esi >= hi {
                return;
            }
            esi - lo + 1
        } else {
            let r = esi - self.k;
            if r < idx as u64 || !(r - idx as u64).is_multiple_of(s) {
                return;
            }
            (hi - lo) + (r - idx as u64) / s + 1
        };
        self.emitted_seen[idx] = self.emitted_seen[idx].max(ordinal);
    }

    fn count_arrival(&mut self, sender_idx: u8) {
        let idx = usize::from(sender_idx).min(self.arrivals_from.len() - 1);
        self.arrivals_from[idx] += 1;
        // Over-delivery (a multicast group paced by a faster co-receiver,
        // or a written-off symbol arriving late after all) means nothing
        // is stranded from this sender; keep the estimate non-negative.
        self.granted[idx] = self.granted[idx].max(self.report_count(idx));
    }

    /// Cumulative arrivals from the sender at `spec.senders[idx]`
    /// (diagnostics; pulls carry [`ReceiverSession::report_count`]).
    pub fn arrivals_from(&self, idx: usize) -> u64 {
        self.arrivals_from[idx]
    }

    /// The cumulative count a pull to `spec.senders[idx]` carries:
    /// arrivals plus written-off losses — both consume sender credit, so
    /// the window keeps sliding across a mass-loss event.
    pub fn report_count(&self, idx: usize) -> u64 {
        self.arrivals_from[idx] + self.written_off[idx]
    }

    /// Record that a regular (credit) pull to `spec.senders[idx]` left
    /// the host: it licenses one more emission.
    pub fn note_pull_sent(&mut self, idx: usize) {
        self.granted[idx] += 1;
    }

    /// Symbols evidently stranded from `spec.senders[idx]`: whichever is
    /// larger of the licensing ledger (pulled) and the emission
    /// high-water mark (observed ESIs), minus arrivals and previous
    /// write-offs. Meaningful on a quiet session — nothing is left in
    /// flight, so the whole difference died in the fabric.
    pub fn stranded_estimate(&self, idx: usize) -> u64 {
        self.granted[idx]
            .max(self.emitted_seen[idx])
            .saturating_sub(self.report_count(idx))
    }

    /// Upper bound on fresh symbols still needed to recover the object.
    pub fn symbols_needed(&self) -> u64 {
        self.oracle.symbols_needed()
    }

    /// Start a new recovery round (called by each keep-alive sweep that
    /// finds this session quiet): resets the per-round write-off budget.
    /// A session still quiet at the next sweep has, by the RTO argument,
    /// lost whatever the previous round requested, so the budget renews.
    pub fn begin_recovery_round(&mut self) {
        self.repull_round = 0;
    }

    /// Size the batched write-off of a recovery re-pull to
    /// `spec.senders[idx]`, read at pull transmission time: the stranded
    /// estimate, capped by `cap` and by what the decode still needs
    /// minus what this round already requested — batched recovery never
    /// asks for more symbols than the session could use. The batch is
    /// added to the sender's cumulative write-off (so the outgoing
    /// count consumes the stranded credit) and the ledger licenses the
    /// `batch`-sized refill plus the forced nudge emission.
    pub fn take_repull_batch(&mut self, idx: usize, cap: u32) -> u32 {
        let budget = self.symbols_needed().saturating_sub(self.repull_round);
        let batch = self
            .stranded_estimate(idx)
            .min(u64::from(cap))
            .min(budget)
            .min(u64::from(u32::MAX)) as u32;
        self.repull_round += u64::from(batch);
        self.written_off[idx] += u64::from(batch);
        // The sender answers with a window refill of up to `batch` plus
        // the one forced emission — all freshly licensed.
        self.granted[idx] += u64::from(batch) + 1;
        batch
    }

    /// The senders a recovery sweep should re-pull: every live sender
    /// with a positive stranded estimate (deterministic index order), or
    /// — when the estimator sees nothing stranded but the session is
    /// quiet anyway (diverged accounting, lost control packets) — the
    /// next round-robin keep-alive target alone. Senders marked dead by
    /// [`ReceiverSession::mark_sender_stranded`] are never targeted.
    pub fn recovery_targets(&mut self) -> Vec<NodeId> {
        let stranded: Vec<NodeId> = (0..self.spec.senders.len())
            .filter(|&i| !self.stranded[i] && self.stranded_estimate(i) > 0)
            .map(|i| self.spec.senders[i])
            .collect();
        if stranded.is_empty() {
            vec![self.next_sweep_target()]
        } else {
            stranded
        }
    }

    /// Distinct symbols collected.
    pub fn symbols_received(&self) -> usize {
        self.oracle.symbols_received()
    }

    /// The next sender to target with a keep-alive pull (round-robin
    /// over the senders not known dead; plain round-robin when every
    /// sender is dead — they may yet revive, and the keep-alive must
    /// keep probing *someone* for liveness).
    pub fn next_sweep_target(&mut self) -> NodeId {
        let n = self.spec.senders.len();
        for _ in 0..n {
            let i = self.rr % n;
            self.rr += 1;
            if !self.stranded[i] {
                return self.spec.senders[i];
            }
        }
        let t = self.spec.senders[self.rr % n];
        self.rr += 1;
        t
    }

    // ---- host-failure stranding and re-target ---------------------------

    /// Where this session stands in the fault-churn lifecycle.
    pub fn state(&self) -> SessionState {
        if self.done {
            SessionState::Complete
        } else if self.stranded.iter().any(|&s| s) {
            SessionState::Stranded
        } else {
            SessionState::Active
        }
    }

    /// The control plane reports the host at `dead` failed. If it is a
    /// live sender of this session, mark it stranded: write off
    /// everything it still owed (so the loss ledger stops attributing
    /// credit to a corpse) and exclude it from sweeps and recovery
    /// rounds. Returns `true` when the sender was newly stranded — the
    /// agent then re-targets the remaining need at the survivors.
    pub fn mark_sender_stranded(&mut self, dead: NodeId) -> bool {
        let Some(idx) = self.spec.sender_index(dead) else {
            return false;
        };
        if self.stranded[idx] || self.done {
            return false;
        }
        self.stranded[idx] = true;
        self.retargets += 1;
        self.written_off[idx] += self.stranded_estimate(idx);
        true
    }

    /// The control plane reports the host at `revived` came back up. If
    /// it is a sender this session had stranded, re-admit it: clear the
    /// dead mark so sweeps and recovery rounds may target it again.
    /// Nothing else changes — the write-off minted at stranding stands
    /// and `granted` is untouched, so **no credit crosses the
    /// strand/revive boundary**: the revived sender starts from a clean
    /// ledger and earns new licenses only through the keep-alive
    /// sweep's probing re-pulls (the liveness signal). Returns `true`
    /// when the sender was actually re-admitted.
    pub fn unstrand_sender(&mut self, revived: NodeId) -> bool {
        let Some(idx) = self.spec.sender_index(revived) else {
            return false;
        };
        if !self.stranded[idx] || self.done {
            return false;
        }
        self.stranded[idx] = false;
        true
    }

    /// Whether `spec.senders[idx]` is marked dead.
    pub fn sender_stranded(&self, idx: usize) -> bool {
        self.stranded[idx]
    }

    /// Senders not known dead, in index order — the re-target candidates.
    pub fn surviving_senders(&self) -> Vec<NodeId> {
        (0..self.spec.senders.len())
            .filter(|&i| !self.stranded[i])
            .map(|i| self.spec.senders[i])
            .collect()
    }

    /// Size the batch of a re-target re-pull to `spec.senders[idx]`,
    /// read at pull transmission time: the symbols the decode still
    /// needs (already-decoded symbols are never re-fetched — the
    /// data-redundancy payoff), capped by `cap` and by what this round
    /// already requested, so a re-target round across several survivors
    /// never re-pulls more than `symbols_needed` at the moment of
    /// stranding. Accounting mirrors [`ReceiverSession::take_repull_batch`]:
    /// the write-off advances the survivor's credit clock (its window
    /// refills by `batch` fresh symbols) and the ledger licenses the
    /// refill plus the forced nudge.
    pub fn take_retarget_batch(&mut self, idx: usize, cap: u32) -> u32 {
        let budget = self.symbols_needed().saturating_sub(self.repull_round);
        let batch = budget.min(u64::from(cap)).min(u64::from(u32::MAX)) as u32;
        self.repull_round += u64::from(batch);
        self.written_off[idx] += u64::from(batch);
        self.granted[idx] += u64::from(batch) + 1;
        self.retarget_symbols += u64::from(batch);
        batch
    }

    /// Produce the completion record (call exactly once, at completion).
    pub fn record(&self, node: NodeId, finish: SimTime) -> SessionRecord {
        SessionRecord {
            session: self.spec.id,
            node,
            data_len: self.spec.data_len,
            start: self.spec.start,
            finish,
            background: self.spec.background,
            symbols: self.symbols_received(),
            trimmed_seen: self.trimmed_seen,
            pulls_sent: self.pulls_sent,
            retargets: self.retargets,
            retarget_symbols: self.retarget_symbols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::SessionId;

    fn recv_session(k_bytes: usize) -> ReceiverSession {
        let spec = SessionSpec::unicast(SessionId(3), k_bytes, NodeId(1), NodeId(0), SimTime::ZERO);
        ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 42)
    }

    #[test]
    fn completes_on_all_source_symbols() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(5 * cfg.symbol_size);
        let mut done = false;
        for esi in 0..5u32 {
            done = rs.on_symbol(0, esi, None, SimTime::from_nanos(esi as u64));
        }
        assert!(done, "systematic completion at k source symbols");
        assert_eq!(rs.arrivals_from(0), 5);
    }

    #[test]
    fn trimmed_headers_count_as_arrivals_not_progress() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(5 * cfg.symbol_size);
        rs.on_trimmed(0, 9, SimTime::from_micros(7));
        assert_eq!(rs.trimmed_seen, 1);
        assert_eq!(rs.symbols_received(), 0);
        assert_eq!(
            rs.arrivals_from(0),
            1,
            "trimmed headers advance the pull clock"
        );
        assert_eq!(rs.last_activity, SimTime::from_micros(7));
    }

    #[test]
    fn per_sender_arrival_accounting() {
        let spec = SessionSpec::multi_source(
            SessionId(4),
            10 * 1440,
            vec![NodeId(1), NodeId(2)],
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 1);
        rs.on_symbol(0, 0, None, SimTime::ZERO);
        rs.on_symbol(1, 5, None, SimTime::ZERO);
        rs.on_symbol(1, 6, None, SimTime::ZERO);
        assert_eq!(rs.arrivals_from(0), 1);
        assert_eq!(rs.arrivals_from(1), 2);
    }

    #[test]
    fn sweep_targets_round_robin() {
        let spec = SessionSpec::multi_source(
            SessionId(3),
            1440,
            vec![NodeId(1), NodeId(2), NodeId(3)],
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 1);
        let t: Vec<u32> = (0..4).map(|_| rs.next_sweep_target().0).collect();
        assert_eq!(t, vec![1, 2, 3, 1]);
    }

    #[test]
    fn estimator_zero_loss_reports_nothing_stranded() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(100 * cfg.symbol_size);
        let share = cfg.per_sender_window(100 * cfg.symbol_size, 1);
        assert_eq!(rs.stranded_estimate(0), share, "blind window outstanding");
        // The whole initial window arrives, plus a licensed pull cycle.
        for esi in 0..share as u32 {
            rs.on_symbol(0, esi, None, SimTime::from_nanos(u64::from(esi)));
        }
        rs.note_pull_sent(0);
        rs.on_symbol(0, share as u32, None, SimTime::ZERO);
        assert_eq!(rs.stranded_estimate(0), 0, "everything licensed arrived");
        rs.begin_recovery_round();
        assert_eq!(rs.take_repull_batch(0, 64), 0, "zero loss ⇒ pure nudge");
    }

    #[test]
    fn estimator_exact_loss_sizes_the_batch() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(100 * cfg.symbol_size);
        let share = cfg.per_sender_window(100 * cfg.symbol_size, 1);
        // Half the blind window arrives, the rest dies in the fabric.
        let arrived = share / 2;
        for esi in 0..arrived as u32 {
            rs.on_symbol(0, esi, None, SimTime::ZERO);
        }
        let lost = share - arrived;
        assert_eq!(rs.stranded_estimate(0), lost);
        rs.begin_recovery_round();
        assert_eq!(rs.take_repull_batch(0, 64), lost as u32, "batch = loss");
    }

    #[test]
    fn estimator_over_estimate_capped_by_cap_and_need() {
        let cfg = PrConfig::paper_default();
        // A 4-symbol object whose licensed count is inflated way past
        // what the decode could use.
        let mut rs = recv_session(4 * cfg.symbol_size);
        for _ in 0..100 {
            rs.note_pull_sent(0);
        }
        rs.on_symbol(0, 0, None, SimTime::ZERO);
        let needed = rs.symbols_needed();
        assert!(needed <= 3 + 2, "4-symbol object needs at most k+overhead");
        rs.begin_recovery_round();
        // The configured cap bounds the batch...
        assert_eq!(rs.take_repull_batch(0, 2), 2.min(needed as u32));
        // ...and the decode requirement bounds a whole round, however
        // large the stranded estimate still is.
        let rest = rs.take_repull_batch(0, 1000);
        assert!(
            u64::from(rest) <= needed.saturating_sub(2.min(needed)),
            "round total must not exceed what the decode needs"
        );
    }

    #[test]
    fn estimator_clamps_on_over_delivery() {
        // Multicast groups are paced by their fastest receiver: a slow
        // receiver can see more arrivals than it ever licensed. The
        // ledger must clamp instead of underflowing.
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(100 * cfg.symbol_size);
        let share = cfg.per_sender_window(100 * cfg.symbol_size, 1);
        for esi in 0..(share as u32 + 20) {
            rs.on_symbol(0, esi, None, SimTime::ZERO);
        }
        assert_eq!(rs.stranded_estimate(0), 0);
    }

    #[test]
    fn recovery_targets_cover_stranded_senders() {
        let spec = SessionSpec::multi_source(
            SessionId(5),
            64 * 1440,
            vec![NodeId(1), NodeId(2), NodeId(3)],
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 1);
        // Sender 1 (index 0) delivered its share (its first partition
        // symbols, in emission order); senders 2 and 3 lost everything.
        let share = PrConfig::paper_default().per_sender_window(64 * 1440, 3);
        for esi in 0..share as u32 {
            rs.on_symbol(0, esi, None, SimTime::ZERO);
        }
        let targets: Vec<u32> = rs.recovery_targets().iter().map(|n| n.0).collect();
        assert_eq!(targets, vec![2, 3], "re-pull exactly the stranded senders");
        // The other senders' shares arrive too (each sender emits its own
        // partition in order): nothing stranded, one round-robin nudge.
        for i in 1..3usize {
            let (lo, _) = crate::session::source_partition(64, 3, i);
            for off in 0..share as u32 {
                rs.on_symbol(i as u8, lo as u32 + off, None, SimTime::ZERO);
            }
        }
        assert_eq!(rs.recovery_targets().len(), 1, "quiet ⇒ single nudge");
    }

    #[test]
    fn stranding_excludes_the_dead_sender_and_retarget_caps_at_need() {
        let cfg = PrConfig::paper_default();
        let spec = SessionSpec::multi_source(
            SessionId(6),
            64 * cfg.symbol_size,
            vec![NodeId(1), NodeId(2), NodeId(3)],
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &cfg, 1);
        assert_eq!(rs.state(), SessionState::Active);
        assert!(rs.mark_sender_stranded(NodeId(2)));
        assert!(!rs.mark_sender_stranded(NodeId(2)), "idempotent");
        assert!(!rs.mark_sender_stranded(NodeId(9)), "not a sender");
        assert_eq!(rs.state(), SessionState::Stranded);
        assert_eq!(
            rs.stranded_estimate(1),
            0,
            "the dead sender's debt is written off at stranding"
        );
        let survivors: Vec<u32> = rs.surviving_senders().iter().map(|n| n.0).collect();
        assert_eq!(survivors, vec![1, 3]);
        // Sweeps and recovery rounds never target the corpse.
        for _ in 0..6 {
            assert_ne!(rs.next_sweep_target(), NodeId(2));
        }
        assert!(!rs.recovery_targets().contains(&NodeId(2)));
        // A re-target round across the survivors is capped by what the
        // decode still needs, however many re-pulls the pacer sends.
        let needed = rs.symbols_needed();
        rs.begin_recovery_round();
        let mut total = 0u64;
        for _ in 0..4 {
            total += u64::from(rs.take_retarget_batch(0, 1_000_000));
            total += u64::from(rs.take_retarget_batch(2, 1_000_000));
        }
        assert_eq!(total, needed, "re-target re-pulls exactly the need");
    }

    #[test]
    fn all_senders_dead_falls_back_to_probing() {
        let spec = SessionSpec::multi_source(
            SessionId(7),
            1440,
            vec![NodeId(1), NodeId(2)],
            NodeId(0),
            SimTime::ZERO,
        );
        let mut rs = ReceiverSession::new(spec, NodeId(0), &PrConfig::paper_default(), 1);
        assert!(rs.mark_sender_stranded(NodeId(1)));
        assert!(rs.mark_sender_stranded(NodeId(2)));
        assert!(rs.surviving_senders().is_empty());
        // The sweep still probes someone — a revival must be noticed.
        let t = rs.next_sweep_target();
        assert!(t == NodeId(1) || t == NodeId(2));
    }

    #[test]
    fn record_captures_counters() {
        let cfg = PrConfig::paper_default();
        let mut rs = recv_session(2 * cfg.symbol_size);
        rs.on_symbol(0, 0, None, SimTime::from_micros(1));
        rs.on_trimmed(0, 1, SimTime::from_micros(2));
        rs.pulls_sent = 5;
        let rec = rs.record(NodeId(0), SimTime::from_micros(100));
        assert_eq!(rec.symbols, 1);
        assert_eq!(rec.trimmed_seen, 1);
        assert_eq!(rec.pulls_sent, 5);
        assert_eq!(rec.duration_ns(), 100_000);
    }
}
