//! Session descriptors.
//!
//! Polyraptor sessions are established out-of-band (the paper assumes the
//! application — e.g. a distributed storage system — knows the
//! participants): the workload installs the same [`SessionSpec`] at every
//! participating host before the start time, and schedules a start timer.

use netsim::{GroupId, NodeId, SimTime};

use crate::wire::SessionId;

/// The contiguous source-symbol range `[lo, hi)` that sender `idx` of
/// `s` replicas owns, for an object of `k` source symbols: first `jl`
/// parts of size `il`, then the rest of size `is` (RFC 6330 partition
/// function). Senders emit their partition first (systematic prefix)
/// and receivers invert emitted ESIs back to per-sender emission
/// ordinals with the same bounds.
pub fn source_partition(k: usize, s: usize, idx: usize) -> (usize, usize) {
    let (il, is, jl, _js) = rq::params::partition(k, s);
    if idx < jl {
        (idx * il, (idx + 1) * il)
    } else {
        (jl * il + (idx - jl) * is, jl * il + (idx - jl + 1) * is)
    }
}

/// Lifecycle of a receiver-side session as the fault-churn machinery
/// sees it (see `ReceiverSession::state`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Transfer in progress, every sender believed alive.
    Active,
    /// At least one sender is known dead (host failure): its remaining
    /// share has been written off and — when a surviving replica exists
    /// — re-targeted there. The session still completes; the state
    /// records that it needed the paper's data redundancy to do so.
    /// Not terminal: a `HostUp` notification re-admits the revived
    /// sender (`ReceiverSession::unstrand_sender`) and the state flows
    /// back to [`SessionState::Active`].
    Stranded,
    /// Object recovered; FINs sent.
    Complete,
}

/// Which side initiates the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initiator {
    /// The (single) sender pushes the initial window at `start` — storage
    /// *write* / replication (one-to-many).
    Sender,
    /// The (single) receiver requests symbols at `start` — storage
    /// *read* / fetch (many-to-one, or unicast fetch).
    Receiver,
}

/// A transport session: one object moving from `senders` to `receivers`.
///
/// Supported shapes (the paper's §2):
/// * one sender → one receiver (unicast, either initiator);
/// * one sender → many receivers (multicast write, requires `group`);
/// * many senders → one receiver (multi-source read).
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Unique id.
    pub id: SessionId,
    /// Object size in bytes.
    pub data_len: usize,
    /// Sending replicas (all hold the whole object).
    pub senders: Vec<NodeId>,
    /// Receivers.
    pub receivers: Vec<NodeId>,
    /// Multicast trees (required iff `receivers.len() > 1`). Senders
    /// spray symbols across these trees — the multicast analogue of
    /// per-packet path spraying ("symbols can be sprayed in the network,
    /// exploiting all available (equal-cost) paths", paper §2).
    pub groups: Vec<GroupId>,
    /// When the initiator kicks the session off.
    pub start: SimTime,
    /// Who initiates.
    pub initiator: Initiator,
    /// Background sessions are excluded from reported metrics.
    pub background: bool,
}

impl SessionSpec {
    /// One-to-one write (sender initiates).
    pub fn unicast(
        id: SessionId,
        data_len: usize,
        sender: NodeId,
        receiver: NodeId,
        start: SimTime,
    ) -> Self {
        Self {
            id,
            data_len,
            senders: vec![sender],
            receivers: vec![receiver],
            groups: Vec::new(),
            start,
            initiator: Initiator::Sender,
            background: false,
        }
    }

    /// One-to-many replication write over a registered multicast group.
    pub fn multicast(
        id: SessionId,
        data_len: usize,
        sender: NodeId,
        receivers: Vec<NodeId>,
        groups: Vec<GroupId>,
        start: SimTime,
    ) -> Self {
        assert!(
            receivers.len() > 1,
            "multicast needs >1 receivers (use unicast)"
        );
        assert!(!groups.is_empty(), "multicast needs at least one tree");
        Self {
            id,
            data_len,
            senders: vec![sender],
            receivers,
            groups,
            start,
            initiator: Initiator::Sender,
            background: false,
        }
    }

    /// Many-to-one fetch: the receiver pulls from every replica.
    pub fn multi_source(
        id: SessionId,
        data_len: usize,
        senders: Vec<NodeId>,
        receiver: NodeId,
        start: SimTime,
    ) -> Self {
        assert!(!senders.is_empty(), "need at least one sender");
        Self {
            id,
            data_len,
            senders,
            receivers: vec![receiver],
            groups: Vec::new(),
            start,
            initiator: Initiator::Receiver,
            background: false,
        }
    }

    /// Mark as background traffic (builder style).
    pub fn background(mut self) -> Self {
        self.background = true;
        self
    }

    /// The index of `node` among the senders, if it is one.
    pub fn sender_index(&self, node: NodeId) -> Option<usize> {
        self.senders.iter().position(|&s| s == node)
    }

    /// The index of `node` among the receivers, if it is one.
    pub fn receiver_index(&self, node: NodeId) -> Option<usize> {
        self.receivers.iter().position(|&r| r == node)
    }

    /// Validate structural invariants (panics on violation — these are
    /// workload construction bugs).
    pub fn validate(&self) {
        assert!(self.data_len > 0, "session {} carries no data", self.id.0);
        assert!(!self.senders.is_empty() && !self.receivers.is_empty());
        assert!(
            self.senders.len() == 1 || self.receivers.len() == 1,
            "many-to-many sessions are not a Polyraptor shape"
        );
        assert_eq!(
            self.receivers.len() > 1,
            !self.groups.is_empty(),
            "multicast trees required iff >1 receivers"
        );
        if self.senders.len() > 1 {
            assert_eq!(
                self.initiator,
                Initiator::Receiver,
                "multi-source must be receiver-initiated"
            );
        }
        for s in &self.senders {
            assert!(!self.receivers.contains(s), "host cannot send to itself");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        let s = SessionSpec::unicast(SessionId(1), 100, NodeId(0), NodeId(1), SimTime::ZERO);
        s.validate();
        let m = SessionSpec::multi_source(
            SessionId(2),
            100,
            vec![NodeId(1), NodeId(2)],
            NodeId(0),
            SimTime::ZERO,
        );
        m.validate();
        assert_eq!(m.initiator, Initiator::Receiver);
        assert_eq!(m.sender_index(NodeId(2)), Some(1));
        assert_eq!(m.sender_index(NodeId(9)), None);
        assert_eq!(m.receiver_index(NodeId(0)), Some(0));
    }

    #[test]
    #[should_panic(expected = "send to itself")]
    fn self_transfer_rejected() {
        SessionSpec::unicast(SessionId(1), 100, NodeId(0), NodeId(0), SimTime::ZERO).validate();
    }

    #[test]
    #[should_panic(expected = ">1 receivers")]
    fn multicast_needs_multiple_receivers() {
        let _ = SessionSpec::multicast(
            SessionId(1),
            100,
            NodeId(0),
            vec![NodeId(1)],
            vec![netsim::GroupId(0)],
            SimTime::ZERO,
        );
    }

    #[test]
    fn background_builder() {
        let s = SessionSpec::unicast(SessionId(1), 100, NodeId(0), NodeId(1), SimTime::ZERO)
            .background();
        assert!(s.background);
    }
}
