//! Sender-side session state machine.
//!
//! A sender never retransmits: every emission is a *fresh* encoding
//! symbol (source symbols first — the systematic prefix — then repair
//! symbols forever). Loss recovery is therefore indistinguishable from
//! ordinary progress, which is what eliminates Incast-style retransmit
//! storms.
//!
//! Flow control is receiver-driven and **windowed**: pulls report the
//! receiver's cumulative arrival count (full or trimmed) and the sender
//! keeps at most one window of symbols outstanding per driving receiver.
//! Because the accounting is cumulative, pull loss, pull coalescing and
//! packet reordering cost nothing — the next pull carries strictly newer
//! information.
//!
//! Multi-source sessions partition the source-symbol range across the
//! `S` replicas (coordination-free: the count is known at establishment)
//! and stride the repair ESI space (`esi ≡ sender_idx (mod S)`), so the
//! union of any senders' emissions is duplicate-free — each replica's
//! stream is fully useful to the receiver.

use netsim::{Ctx, Dest, FlowId, NodeId, Packet, SimTime};

use crate::config::{MulticastPull, OracleMode, PrConfig};
use crate::oracle::session_object;
use crate::session::SessionSpec;
use crate::wire::{symbol_packet_bytes, PrPayload};

/// Sender-side state for one session.
pub struct SenderSession {
    /// The shared session descriptor.
    pub spec: SessionSpec,
    sender_idx: u8,
    n_senders: u32,
    k: u32,
    /// Next source ESI to emit and the end of this sender's partition.
    next_src: u32,
    src_end: u32,
    /// Repair counter: the j-th repair from this sender is
    /// `k + sender_idx + j·S`.
    next_repair: u64,
    /// Group emissions so far (also: what every attached receiver has
    /// been sent).
    emitted: u64,
    /// Per-receiver cumulative arrival reports (from pulls), indexed
    /// like `spec.receivers`.
    latest: Vec<u64>,
    /// Extra unicast emissions per receiver (straggler service).
    unicast_sent: Vec<u64>,
    /// Consecutive pump rounds a receiver alone blocked strict
    /// aggregation (straggler detection under [`MulticastPull::All`]).
    blocked: Vec<u64>,
    fins: Vec<bool>,
    detached: Vec<bool>,
    started: bool,
    /// Real-mode encoder (None under the counting oracle).
    encoder: Option<rq::Encoder>,
    /// All receivers have FINed; the agent can drop this state.
    pub complete: bool,
    /// Symbols emitted (diagnostics).
    pub symbols_sent: u64,
}

impl SenderSession {
    /// Build sender state for `node`'s role in `spec`.
    pub fn new(spec: SessionSpec, node: NodeId, cfg: &PrConfig) -> Self {
        let idx = spec
            .sender_index(node)
            .expect("node is not a sender of this session");
        let k = cfg.k_for(spec.data_len) as u32;
        let s = spec.senders.len();
        let (lo, hi) = crate::session::source_partition(k as usize, s, idx);
        let encoder = match cfg.oracle {
            OracleMode::Counting => None,
            OracleMode::Real => {
                let data = session_object(spec.id, spec.data_len);
                Some(
                    rq::Encoder::with_mode(&data, cfg.symbol_size, cfg.code_mode)
                        .expect("non-empty session object"),
                )
            }
        };
        let n_recv = spec.receivers.len();
        Self {
            sender_idx: idx as u8,
            n_senders: s as u32,
            k,
            next_src: lo as u32,
            src_end: hi as u32,
            next_repair: 0,
            emitted: 0,
            latest: vec![0; n_recv],
            unicast_sent: vec![0; n_recv],
            blocked: vec![0; n_recv],
            fins: vec![false; n_recv],
            detached: vec![false; n_recv],
            started: false,
            encoder,
            complete: false,
            symbols_sent: 0,
            spec,
        }
    }

    /// Allocate the next fresh ESI: remaining source partition first
    /// (systematic prefix), then this sender's repair stride.
    fn alloc_esi(&mut self) -> u32 {
        if self.next_src < self.src_end {
            let esi = self.next_src;
            self.next_src += 1;
            esi
        } else {
            let esi = u64::from(self.k)
                + u64::from(self.sender_idx)
                + self.next_repair * u64::from(self.n_senders);
            self.next_repair += 1;
            u32::try_from(esi).expect("repair ESI space exhausted (u32)")
        }
    }

    fn flow(&self) -> FlowId {
        FlowId(rq::rand::hash2(
            u64::from(self.spec.id.0),
            u64::from(self.sender_idx) << 32 | 0xF10F,
        ))
    }

    /// Emit one fresh symbol towards `dst`.
    fn emit(&mut self, dst: Dest, node: NodeId, cfg: &PrConfig, ctx: &mut Ctx<PrPayload>) {
        let esi = self.alloc_esi();
        let body = self.encoder.as_ref().map(|e| e.symbol(esi));
        self.symbols_sent += 1;
        ctx.send(Packet {
            src: node,
            dst,
            flow: self.flow(),
            size: symbol_packet_bytes(cfg.symbol_size),
            payload: PrPayload::Symbol {
                session: self.spec.id,
                esi,
                sender_idx: self.sender_idx,
                trimmed: false,
                body,
            },
        });
    }

    /// Emit one symbol to the whole group (or the single receiver).
    fn emit_group(&mut self, node: NodeId, cfg: &PrConfig, ctx: &mut Ctx<PrPayload>) {
        self.emitted += 1;
        let dst = self.data_dest();
        self.emit(dst, node, cfg, ctx);
    }

    /// The destination data symbols flow to: one of the session's
    /// multicast trees for replication writes (rotating per symbol — the
    /// multicast analogue of per-packet spraying), else the single
    /// receiver.
    fn data_dest(&self) -> Dest {
        if self.spec.groups.is_empty() {
            Dest::Host(self.spec.receivers[0])
        } else {
            let idx = (self.emitted as usize) % self.spec.groups.len();
            Dest::Group(self.spec.groups[idx])
        }
    }

    /// The per-receiver in-flight window. Writes push a full initial
    /// window; each of `S` read replicas keeps its share, so the
    /// receiver's aggregate in-flight is one window. Short objects cap
    /// at `k + 2` (enough to finish in one RTT).
    fn window(&self, cfg: &PrConfig) -> u64 {
        cfg.per_sender_window(self.spec.data_len, self.n_senders as usize)
    }

    /// Symbols this sender believes are on the wire towards receiver
    /// `r`: everything emitted (group + straggler unicast) minus the
    /// receiver's last cumulative arrival report.
    fn in_flight(&self, r: usize) -> u64 {
        (self.emitted + self.unicast_sent[r]).saturating_sub(self.latest[r])
    }

    /// Sender-initiated start (storage write): push the initial window
    /// at line rate.
    pub fn start(&mut self, node: NodeId, cfg: &PrConfig, ctx: &mut Ctx<PrPayload>) {
        if self.started {
            return;
        }
        self.started = true;
        for _ in 0..self.window(cfg) {
            self.emit_group(node, cfg, ctx);
        }
    }

    /// A `Req` arrived (receiver-initiated read): same as `start`.
    pub fn on_req(&mut self, node: NodeId, cfg: &PrConfig, ctx: &mut Ctx<PrPayload>) {
        self.start(node, cfg, ctx);
    }

    /// A pull arrived from `from` reporting `count` cumulative arrivals.
    /// A nudge with a non-zero `batch` is a batched recovery re-pull:
    /// the receiver writes off `batch` stranded symbols, and the sender
    /// refills the reopened window in one burst.
    // The argument list mirrors the wire fields plus the agent's calling
    // context; bundling them into a struct would only rename the tuple.
    #[allow(clippy::too_many_arguments)]
    pub fn on_pull(
        &mut self,
        from: NodeId,
        count: u64,
        nudge: bool,
        batch: u32,
        node: NodeId,
        cfg: &PrConfig,
        ctx: &mut Ctx<PrPayload>,
    ) {
        if self.complete {
            return;
        }
        // A pull also (re)starts a session whose Req/initial window was
        // lost — liveness under arbitrary control-packet loss.
        if !self.started {
            self.start(node, cfg, ctx);
            return;
        }
        let Some(r) = self.spec.receiver_index(from) else {
            return; // stray pull from a non-member; ignore
        };
        if self.fins[r] {
            return;
        }
        // Cumulative counts tolerate reordered/lost pulls. Counts fold
        // in the receiver's loss write-offs (stranded symbols consume
        // credit like arrivals, which is what keeps the window sliding
        // across a mass-loss event), so they are clamped at what was
        // actually emitted towards this receiver: an over-estimated
        // write-off cannot mint credit for symbols that never existed.
        let ceiling = self.emitted + self.unicast_sent[r];
        self.latest[r] = self.latest[r].max(count.min(ceiling));

        if nudge {
            // Force one emission so a receiver whose accounting diverged
            // (lost trimmed headers) makes progress even at batch 0...
            if self.detached[r] {
                self.unicast_sent[r] += 1;
                self.emit(Dest::Host(from), node, cfg, ctx);
                // ...then refill whatever window the write-off reopened.
                if batch > 0 {
                    let w = self.window(cfg);
                    while self.in_flight(r) < w {
                        self.unicast_sent[r] += 1;
                        self.emit(Dest::Host(from), node, cfg, ctx);
                    }
                }
            } else {
                self.emit_group(node, cfg, ctx);
                if batch > 0 {
                    self.pump(node, cfg, ctx);
                }
            }
            return;
        }

        if self.detached[r] {
            // Stragglers are served on their own window, unicast.
            let w = self.window(cfg);
            while self.in_flight(r) < w {
                self.unicast_sent[r] += 1;
                self.emit(Dest::Host(from), node, cfg, ctx);
            }
            return;
        }
        self.pump(node, cfg, ctx);
    }

    /// Emit group symbols according to the configured pull policy:
    ///
    /// * [`MulticastPull::All`] — emit while **every** attached receiver
    ///   has in-flight room (strict aggregation, the paper's §2 wording:
    ///   the group advances at the slowest receiver);
    /// * [`MulticastPull::Any`] — emit while **any** attached receiver
    ///   has room (pull coalescing: the group advances at the fastest
    ///   receiver; slower receivers shed the excess via trimming and
    ///   finish at their own pace).
    fn pump(&mut self, node: NodeId, cfg: &PrConfig, ctx: &mut Ctx<PrPayload>) {
        let w = self.window(cfg);
        loop {
            let mut any_active = false;
            let mut all_have_room = true;
            let mut any_has_room = false;
            for r in 0..self.latest.len() {
                if self.fins[r] || self.detached[r] {
                    continue;
                }
                any_active = true;
                if self.in_flight(r) < w {
                    any_has_room = true;
                } else {
                    all_have_room = false;
                }
            }
            let go = any_active
                && match cfg.multicast {
                    MulticastPull::All => all_have_room,
                    MulticastPull::Any => any_has_room,
                };
            if !go {
                // Strict aggregation: blame the blockers (straggler
                // detection, paper's "current work" extension).
                if any_active && cfg.multicast == MulticastPull::All {
                    self.detect_stragglers(w, cfg);
                }
                return;
            }
            self.emit_group(node, cfg, ctx);
        }
    }

    /// Under strict aggregation, count pump rounds blocked per receiver;
    /// past the configured threshold the receiver is detached and served
    /// unicast at its own pace.
    fn detect_stragglers(&mut self, w: u64, cfg: &PrConfig) {
        let Some(threshold) = cfg.straggler_lag else {
            return;
        };
        let mut blockers = Vec::new();
        let mut any_current = false;
        for r in 0..self.latest.len() {
            if self.fins[r] || self.detached[r] {
                continue;
            }
            if self.in_flight(r) >= w {
                blockers.push(r);
            } else {
                any_current = true;
            }
        }
        // Only meaningful when someone is ready while others block.
        if !any_current {
            return;
        }
        for r in blockers {
            self.blocked[r] += 1;
            if self.blocked[r] > threshold {
                self.detached[r] = true;
            }
        }
    }

    /// A FIN arrived from `from`. Returns `true` once every receiver has
    /// FINed (session can be dropped).
    pub fn on_fin(
        &mut self,
        from: NodeId,
        node: NodeId,
        cfg: &PrConfig,
        ctx: &mut Ctx<PrPayload>,
    ) -> bool {
        if let Some(r) = self.spec.receiver_index(from) {
            self.fins[r] = true;
        }
        if self.fins.iter().all(|&f| f) {
            self.complete = true;
        } else if self.spec.receivers.len() > 1 {
            // The finished receiver no longer gates aggregation; emit any
            // now-unblocked rounds.
            self.pump(node, cfg, ctx);
        }
        self.complete
    }

    /// Diagnostic: per-receiver cumulative arrival reports.
    pub fn latest_reports(&self) -> &[u64] {
        &self.latest
    }

    /// Diagnostic: which receivers are detached.
    pub fn detached(&self) -> &[bool] {
        &self.detached
    }

    /// Diagnostic: total group emissions.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Start time convenience (for scheduling assertions).
    pub fn start_time(&self) -> SimTime {
        self.spec.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::SessionId;

    fn cfg() -> PrConfig {
        PrConfig::paper_default()
    }

    fn spec_multi(s: usize) -> SessionSpec {
        SessionSpec::multi_source(
            SessionId(9),
            4 << 20,
            (1..=s as u32).map(NodeId).collect(),
            NodeId(0),
            SimTime::ZERO,
        )
    }

    #[test]
    fn partition_covers_all_sources_without_overlap() {
        let c = cfg();
        let k = c.k_for(4 << 20);
        for s in [1usize, 2, 3, 5, 7] {
            let spec = spec_multi(s);
            let mut covered = vec![false; k];
            for i in 1..=s as u32 {
                let ss = SenderSession::new(spec.clone(), NodeId(i), &c);
                for e in ss.next_src..ss.src_end {
                    assert!(!covered[e as usize], "overlap at esi {e} (s={s})");
                    covered[e as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "gap in partition (s={s})");
        }
    }

    #[test]
    fn repair_esis_never_collide_across_senders() {
        let c = cfg();
        let spec = spec_multi(3);
        let mut seen = std::collections::HashSet::new();
        for i in 1..=3u32 {
            let mut ss = SenderSession::new(spec.clone(), NodeId(i), &c);
            ss.next_src = ss.src_end; // exhaust sources; force repairs
            for _ in 0..1000 {
                assert!(seen.insert(ss.alloc_esi()), "repair ESI collision");
            }
        }
    }

    #[test]
    fn esi_order_is_source_first() {
        let c = cfg();
        let spec =
            SessionSpec::unicast(SessionId(1), 10 * 1440, NodeId(0), NodeId(1), SimTime::ZERO);
        let mut ss = SenderSession::new(spec, NodeId(0), &c);
        let esis: Vec<u32> = (0..12).map(|_| ss.alloc_esi()).collect();
        assert_eq!(&esis[..10], &(0..10).collect::<Vec<u32>>()[..]);
        assert!(esis[10] >= 10 && esis[11] > esis[10]);
    }

    #[test]
    fn window_capped_for_short_objects() {
        let c = cfg();
        let spec = SessionSpec::unicast(SessionId(1), 1440, NodeId(0), NodeId(1), SimTime::ZERO);
        let ss = SenderSession::new(spec, NodeId(0), &c);
        assert_eq!(ss.window(&c), 3); // k=1 → 1+2
    }

    #[test]
    fn window_divided_among_read_replicas() {
        let c = cfg();
        let spec = spec_multi(3);
        let ss = SenderSession::new(spec, NodeId(1), &c);
        assert_eq!(ss.window(&c), u64::from(c.initial_window.div_ceil(3)));
    }

    #[test]
    fn pull_drives_window_refill() {
        let c = cfg();
        let spec = SessionSpec::unicast(
            SessionId(1),
            100 * 1440,
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
        );
        let mut ss = SenderSession::new(spec, NodeId(0), &c);
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.start(NodeId(0), &c, &mut ctx);
        let w = ss.window(&c);
        assert_eq!(ctx.queued_sends().len() as u64, w);
        // Receiver reports 5 arrivals: sender tops the window back up.
        let mut ctx2 = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.on_pull(NodeId(1), 5, false, 0, NodeId(0), &c, &mut ctx2);
        assert_eq!(ctx2.queued_sends().len(), 5);
        // Stale (reordered) pull with an older count: no over-emission.
        let mut ctx3 = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.on_pull(NodeId(1), 3, false, 0, NodeId(0), &c, &mut ctx3);
        assert_eq!(ctx3.queued_sends().len(), 0);
    }

    #[test]
    fn batched_repull_refills_exactly_the_writeoff() {
        let c = cfg();
        let spec = SessionSpec::unicast(
            SessionId(1),
            100 * 1440,
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
        );
        let mut ss = SenderSession::new(spec, NodeId(0), &c);
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.start(NodeId(0), &c, &mut ctx);
        // Window believed full; 5 in-flight symbols died. The batched
        // re-pull reports them as consumed (count = 0 arrivals + 5
        // written off) and triggers a refill: exactly 5 fresh symbols
        // (1 forced + 4 pumped).
        let mut ctx2 = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.on_pull(NodeId(1), 5, true, 5, NodeId(0), &c, &mut ctx2);
        assert_eq!(ctx2.queued_sends().len(), 5);
        // The self-clock keeps running from the advanced credit clock:
        // when the refill arrives, per-arrival counts continue past the
        // write-off and slide the window 1:1 again.
        let mut ctx3 = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.on_pull(NodeId(1), 6, false, 0, NodeId(0), &c, &mut ctx3);
        assert_eq!(ctx3.queued_sends().len(), 1, "credit loop resumed");
    }

    #[test]
    fn batched_repull_cannot_mint_credit_beyond_emissions() {
        let c = cfg();
        let spec = SessionSpec::unicast(
            SessionId(1),
            100 * 1440,
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
        );
        let mut ss = SenderSession::new(spec, NodeId(0), &c);
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.start(NodeId(0), &c, &mut ctx);
        let emitted_before = ss.emitted();
        // An absurd over-estimate: the reported count clamps at
        // everything ever emitted, so the refill burst is at most one
        // window — nothing is minted.
        let mut ctx2 = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.on_pull(
            NodeId(1),
            1_000_000,
            true,
            1_000_000,
            NodeId(0),
            &c,
            &mut ctx2,
        );
        assert_eq!(
            ctx2.queued_sends().len() as u64,
            emitted_before,
            "refill capped at the presumed-lost window, nothing minted"
        );
    }

    #[test]
    fn nudge_forces_single_emission() {
        let c = cfg();
        let spec = SessionSpec::unicast(
            SessionId(1),
            100 * 1440,
            NodeId(0),
            NodeId(1),
            SimTime::ZERO,
        );
        let mut ss = SenderSession::new(spec, NodeId(0), &c);
        let mut ctx = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.start(NodeId(0), &c, &mut ctx);
        // Window is full (no arrivals reported) but a nudge still emits.
        let mut ctx2 = Ctx::detached(SimTime::ZERO, NodeId(0));
        ss.on_pull(NodeId(1), 0, true, 0, NodeId(0), &c, &mut ctx2);
        assert_eq!(ctx2.queued_sends().len(), 1);
    }
}
