//! Quickstart: the fountain code and a first simulated transfer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Part 1 uses the `rq` codec directly (encode, lose packets, decode).
//! Part 2 runs a real Polyraptor transfer — with the actual decoder in
//! the loop — across a simulated two-host fabric.

use polyraptor_repro::netsim::{NodeKind, SimConfig, SimTime, Simulator, Topology};
use polyraptor_repro::polyraptor::{
    session_object, start_token, PolyraptorAgent, PrConfig, SessionId, SessionSpec,
};
use polyraptor_repro::rq::{Decoder, Encoder};

fn main() {
    // ---- Part 1: the code itself ---------------------------------------
    let object: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let encoder = Encoder::new(&object, 1440).expect("encode");
    let k = encoder.params().k;
    println!(
        "object: {} bytes → K = {k} source symbols of 1440 B",
        object.len()
    );

    // Simulate a lossy channel: drop 10% of source symbols, top up with
    // repair symbols (any repair replaces any loss — rateless).
    let mut decoder = Decoder::new(encoder.params());
    let mut received = 0usize;
    for esi in 0..k as u32 {
        if esi % 10 != 3 {
            decoder.push(esi, encoder.symbol(esi));
            received += 1;
        }
    }
    let mut esi = k as u32;
    while received < k + 2 {
        decoder.push(esi, encoder.symbol(esi));
        esi += 1;
        received += 1;
    }
    let decoded = decoder.try_decode().expect("k+2 symbols decode");
    assert_eq!(decoded, object);
    println!(
        "decoded after 10% loss with {} symbols (k+{})",
        received,
        received - k
    );

    // ---- Part 2: a transfer over the simulated fabric ------------------
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Host);
    let s = topo.add_node(NodeKind::Switch);
    let b = topo.add_node(NodeKind::Host);
    topo.connect(a, s, 1_000_000_000, 10_000); // 1 Gbps, 10 µs
    topo.connect(b, s, 1_000_000_000, 10_000);
    topo.compute_routes();

    // Real oracle: the receiver runs the actual decoder on actual bytes.
    let cfg = PrConfig::real_oracle();
    let mut sim = Simulator::new(topo, SimConfig::ndp(42));
    sim.set_agent(a, PolyraptorAgent::new(a, cfg, 1));
    sim.set_agent(b, PolyraptorAgent::new(b, cfg, 2));

    let bytes = 256 * 1024;
    let spec = SessionSpec::unicast(SessionId(7), bytes, a, b, SimTime::ZERO);
    sim.agent_mut(a).install(spec.clone());
    sim.agent_mut(b).install(spec.clone());
    sim.schedule_timer(a, spec.start, start_token(spec.id));
    sim.schedule_timer(b, spec.start, start_token(spec.id));
    sim.run_to_completion();

    let rec = &sim.agent(b).records[0];
    println!(
        "simulated transfer: {} KB in {} → {:.3} Gbps ({} symbols, {} pulls)",
        bytes / 1024,
        netsim::SimTime::from_nanos(rec.duration_ns()),
        rec.goodput_gbps(),
        rec.symbols,
        rec.pulls_sent,
    );
    // The object the receiver decoded is the canonical session object.
    let expected = session_object(SessionId(7), bytes);
    println!(
        "decoded object verified: {} bytes, first byte {:#04x}",
        expected.len(),
        expected[0]
    );
}
