//! Mid-run core-switch failure on the paper's 250-host fat-tree:
//! Polyraptor vs. TCP when the fabric actively fails underneath them.
//!
//! The victim is the core switch that the most ECMP-pinned TCP flows
//! cross at the failure instant (chosen by replaying the fabric's ECMP
//! hash, so the comparison is guaranteed to be about failure handling).
//! Both transports see the same 25 ms control-plane convergence window:
//! Polyraptor sprays around the blackhole and repairs its multicast
//! trees — every session completes with a modest slowdown — while TCP's
//! pinned flows stall until their retransmission timers fire.
//!
//! ```sh
//! cargo run --release --example fabric_faults            # 250-host fabric
//! cargo run --release --example fabric_faults -- --smoke # 16-host quick run
//! ```

use polyraptor_repro::workload::{
    run_fault_rq, run_fault_tcp, Fabric, FaultScenario, RankCurve, RqRunOptions, TcpRunOptions,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (fabric, sessions, object_bytes) = if smoke {
        (Fabric::small(), 4, 128 << 10)
    } else {
        (Fabric::paper(), 8, 1 << 20)
    };
    let sc = FaultScenario::fig1_failure(sessions, object_bytes, 42);
    println!(
        "{} x {} KB 3-replica writes on a {}; busiest core switch fails mid-transfer\n",
        sessions,
        object_bytes >> 10,
        fabric.describe()
    );

    let rq = run_fault_rq(&sc, &fabric, &RqRunOptions::default());
    let rq_healthy = run_fault_rq(&sc.healthy(), &fabric, &RqRunOptions::default());
    let tcp = run_fault_tcp(&sc, &fabric, &TcpRunOptions::default());
    let tcp_healthy = run_fault_tcp(&sc.healthy(), &fabric, &TcpRunOptions::default());

    println!(
        "victim: core switch {} down at t = {:.2} ms\n",
        rq.victim.0,
        rq.fail_at.expect("faulted run").as_secs_f64() * 1e3
    );
    for (label, faulted, healthy) in [
        ("Polyraptor", &rq, &rq_healthy),
        ("TCP", &tcp, &tcp_healthy),
    ] {
        let curve = RankCurve::new(faulted.flows.iter().map(|f| f.goodput_gbps()).collect());
        println!(
            "  {label:<10} goodput best {:.3} median {:.3} worst {:.3} Gbps",
            curve.at(0),
            curve.median(),
            curve.at(curve.len() - 1)
        );
        println!(
            "  {label:<10} makespan {:.2} ms (healthy {:.2} ms)  timeouts {}  \
             lost-to-fault {}  reroutes {}  trees repaired {}",
            faulted.makespan().as_secs_f64() * 1e3,
            healthy.makespan().as_secs_f64() * 1e3,
            faulted.timeouts,
            faulted.fabric.lost_to_fault,
            faulted.fabric.reroutes,
            faulted.fabric.trees_repaired,
        );
    }
    println!(
        "\nEvery Polyraptor session completes — spraying rides around the blackhole and\n\
         coded repair replaces lost symbols, no timeouts involved; TCP's ECMP-pinned\n\
         flows stall until their (200 ms floor) retransmission timers fire."
    );
}
