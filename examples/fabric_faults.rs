//! Mid-run core-switch failure on the paper's 250-host fat-tree:
//! Polyraptor vs. TCP when the fabric actively fails underneath them,
//! plus the two fast-recovery mechanisms in isolation — batched sweep
//! re-pulls (vs. the legacy one-nudge-per-sweep recovery) and
//! incremental route repair (vs. a full masked recomputation).
//!
//! The victim is the core switch that the most ECMP-pinned TCP flows
//! cross at the failure instant (chosen by replaying the fabric's ECMP
//! hash, so the comparison is guaranteed to be about failure handling).
//! Both transports see the same 25 ms control-plane convergence window:
//! Polyraptor sprays around the blackhole and repairs its multicast
//! trees — every session completes with a modest slowdown — while TCP's
//! pinned flows stall until their retransmission timers fire.
//!
//! `--churn` switches to the fault-churn soak: a sustained Poisson
//! fault process (links, sub-convergence-window flaps, transit
//! switches, and host failures with session re-target) over a
//! 3-replica fetch workload, printing completion/recovery percentiles
//! and the new coalescing/restore counters, under both replica
//! placements.
//!
//! `--telemetry` records the run (time-series buckets, fault/reroute
//! annotations, flow spans, flight-recorder dumps) and writes
//! `{fault,churn}_{fabric.csv,ports.csv,trace.json}` into
//! `target/telemetry/`; the trace loads in Perfetto. Recording changes
//! nothing else — the run stays byte-identical per seed.
//!
//! ```sh
//! cargo run --release --example fabric_faults            # 250-host fabric
//! cargo run --release --example fabric_faults -- --smoke # 16-host quick run
//! cargo run --release --example fabric_faults -- --churn [--smoke] [--telemetry]
//! cargo run --release --example fabric_faults -- --churn --par 4 # parallel reroutes
//! ```
//!
//! `--par N` sets the route-computation worker threads (0 = available
//! cores, 1 = serial); results stay byte-identical per seed at every
//! setting — the flag only changes the reroute wall-clock on the
//! large-fabric churn lines. `--shards N` does the same for the event
//! loop itself (conservative-window shard workers, 0 = available
//! cores): per-seed results are identical at every shard count.

use std::path::Path;

use polyraptor_repro::netsim::{FabricStats, FaultMask, NodeKind, Topology};
use polyraptor_repro::workload::{
    run_churn_rq, run_churn_tcp, run_fault_rq, run_fault_tcp, ChurnReport, ChurnScenario, Fabric,
    FaultScenario, RankCurve, RqRunOptions, RunTelemetry, TcpRunOptions, TelemetryOptions,
};

/// Where `--telemetry` artefacts land.
const TELEMETRY_DIR: &str = "target/telemetry";

/// `--par N`: route-computation worker threads (0 = available cores,
/// 1 = serial, the default). Results are byte-identical per seed at
/// every setting — the flag only changes reroute wall-clock on the
/// large fabrics.
fn par_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--par")
        .map(|i| {
            args.get(i + 1)
                .expect("--par takes a thread count")
                .parse()
                .expect("--par takes a thread count")
        })
        .unwrap_or(1)
}

/// `--shards N`: event-loop shards (0 = available cores, 1 = the
/// serial loop, the default). Results are byte-identical per seed at
/// every setting — the flag only changes event-loop wall-clock on the
/// large fabrics.
fn shards_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--shards")
        .map(|i| {
            args.get(i + 1)
                .expect("--shards takes a shard count")
                .parse()
                .expect("--shards takes a shard count")
        })
        .unwrap_or(1)
}

/// Per-layer trim shares: each layer's trims as count and share of all
/// layer-attributed trims, next to what the layer forwarded. Layers
/// that neither forwarded nor trimmed anything are skipped.
fn layer_trim_line(fabric: &FabricStats) -> String {
    let total: u64 = fabric.layer_trimmed.iter().sum();
    let parts: Vec<String> = fabric
        .layer_forwarded
        .iter()
        .zip(&fabric.layer_trimmed)
        .enumerate()
        .filter(|(_, (&fwd, &trims))| fwd > 0 || trims > 0)
        .map(|(l, (&fwd, &trims))| {
            let share = if total == 0 {
                0.0
            } else {
                trims as f64 * 100.0 / total as f64
            };
            format!("L{l} {trims} trims/{fwd} fwd ({share:.1}% of trims)")
        })
        .collect();
    parts.join(", ")
}

fn write_telemetry(t: &RunTelemetry, prefix: &str) {
    let paths = t
        .write_files(Path::new(TELEMETRY_DIR), prefix)
        .expect("write telemetry artefacts");
    println!("  telemetry: {}", t.describe());
    for p in paths {
        println!("  telemetry: wrote {}", p.display());
    }
}

/// Wall-clock the control-plane bill of one link failure on `fabric`:
/// a full masked recomputation vs. the incremental repair, at the
/// `--par` thread count.
fn time_reroute(fabric: &Fabric) -> (f64, f64, usize) {
    let mut pristine = fabric.build();
    pristine.set_parallelism(par_flag());
    // Victim: the first switch-switch link (an edge/leaf uplink).
    let (node, port) = (0..pristine.node_count() as u32)
        .map(polyraptor_repro::netsim::NodeId)
        .filter(|&n| pristine.kind(n) == NodeKind::Switch)
        .find_map(|n| {
            pristine
                .node_ports(n)
                .iter()
                .position(|p| pristine.kind(p.peer) == NodeKind::Switch)
                .map(|p| (n, p as u16))
        })
        .expect("fabric has switch-switch links");
    let mut mask = FaultMask::new();
    mask.fail_link(&pristine, node, port);
    let wall = |f: &mut dyn FnMut(&mut Topology)| {
        let mut t = pristine.clone();
        let start = std::time::Instant::now();
        f(&mut t);
        start.elapsed().as_secs_f64() * 1e3
    };
    let full_ms = wall(&mut |t| t.compute_routes_masked(&mask));
    let mut rebuilt = 0;
    let repair_ms = wall(&mut |t| rebuilt = t.repair_routes(&mask).dests_rebuilt);
    (full_ms, repair_ms, rebuilt)
}

fn churn_line(label: &str, rep: &ChurnReport) {
    let c = rep.completion();
    println!(
        "  {label:<14} completion p50 {:.2} p99 {:.2} max {:.2} ms \
         ({} fetches, all complete, {} timeouts)",
        c.p50_ns as f64 / 1e6,
        c.p99_ns as f64 / 1e6,
        c.max_ns as f64 / 1e6,
        c.flows,
        rep.timeouts,
    );
    if let Some(r) = rep.recovery() {
        println!(
            "  {label:<14} recovery   p50 {:.2} p99 {:.2} max {:.2} ms \
             ({} fetch×fault pairs in flight)",
            r.p50_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.max_ns as f64 / 1e6,
            r.flows,
        );
    }
    println!(
        "  {label:<14} {} host failures -> {} sessions stranded, {} re-targeted \
         ({} symbols re-pulled from survivors)",
        rep.host_failures, rep.stranded_sessions, rep.retargeted_sessions, rep.retarget_symbols,
    );
    println!(
        "  {label:<14} fabric: {} reroutes ({} incremental, {} restore-incremental), \
         {} flaps coalesced, {} lost to faults",
        rep.fabric.reroutes,
        rep.fabric.reroutes_incremental,
        rep.fabric.restores_incremental,
        rep.fabric.flaps_coalesced,
        rep.fabric.lost_to_fault,
    );
    let layers = layer_trim_line(&rep.fabric);
    if !layers.is_empty() {
        println!("  {label:<14} per-layer trims: {layers}");
    }
}

fn run_churn(smoke: bool, telemetry: bool) {
    let (fabric, sessions, object_bytes, events) = if smoke {
        (Fabric::small(), 6, 2 << 20, 12)
    } else {
        (Fabric::paper(), 24, 4 << 20, 10)
    };
    let mut sc = ChurnScenario::ten_event(sessions, object_bytes, 2);
    sc.fault_events = events;
    println!(
        "{} x {} MB 3-replica fetches on a {} under a {}-event Poisson fault process\n\
         (links, sub-convergence-window flaps, transit switches, host failures; \
         every failure repairs after {} ms)\n",
        sessions,
        object_bytes >> 20,
        fabric.describe(),
        sc.fault_events,
        sc.repair_delay_ns / 1_000_000,
    );
    let mut opts = RqRunOptions {
        parallelism: par_flag(),
        shards: shards_flag(),
        ..Default::default()
    };
    if telemetry {
        opts.telemetry = TelemetryOptions::enabled_default();
    }
    let rep = run_churn_rq(&sc, &fabric, &opts);
    churn_line("default", &rep);
    if let Some(t) = &rep.telemetry {
        write_telemetry(t, "churn");
    }
    let mut spread = sc;
    spread.shared_risk_placement = true;
    let rep_spread = run_churn_rq(&spread, &fabric, &RqRunOptions::default());
    println!();
    churn_line("shared-risk", &rep_spread);
    // The TCP baseline under the identical seeded fault plan: one
    // ECMP-pinned connection per replica stripe, no re-target — a dead
    // replica's stripe stalls until the scripted repair and the
    // retransmission machinery, which is exactly the RTO-driven tail
    // the comparison shows.
    let tcp = run_churn_tcp(&sc, &fabric, &TcpRunOptions::default());
    println!();
    churn_line("tcp", &tcp);
    let (p, t) = (rep.completion(), tcp.completion());
    println!(
        "\nEvery fetch completes under sustained churn: path redundancy (spraying +\n\
         restore repair) rides out the fabric events, data redundancy (coded replicas +\n\
         re-target) rides out the host failures — flapping links coalesce to no-op\n\
         deltas instead of full route recomputes, and recovery is pull-paced (0\n\
         timeouts). The TCP baseline survives on its retransmission timers instead:\n\
         {} RTO firings; completion p99 {:.2} ms vs {:.2} ms for Polyraptor under\n\
         the same fault plan.",
        tcp.timeouts,
        t.p99_ns as f64 / 1e6,
        p.p99_ns as f64 / 1e6,
    );

    // The CSR route arenas make churn at real datacenter scale
    // practical: the same Poisson fault process on a 1024-host k=16
    // fat-tree and a 5000-host Jellyfish, with the one-link
    // control-plane bill alongside. Runs in both modes (smaller
    // workload under --smoke) so CI executes the scale claim.
    let (big_sessions, big_bytes, big_events) = if smoke {
        (4, 256 << 10, 6)
    } else {
        (8, 1 << 20, 10)
    };
    println!();
    for fabric in [Fabric::large(), Fabric::large_jellyfish()] {
        let mut big = ChurnScenario::ten_event(big_sessions, big_bytes, 2);
        big.fault_events = big_events;
        let big_opts = RqRunOptions {
            parallelism: par_flag(),
            shards: shards_flag(),
            ..Default::default()
        };
        let rep = run_churn_rq(&big, &fabric, &big_opts);
        let c = rep.completion();
        let (full_ms, repair_ms, _) = time_reroute(&fabric);
        println!(
            "large-fabric churn: {}: completion p99 {:.2} ms, {} reroutes \
             ({} incremental, {} restore-incremental), {} timeouts; \
             one-link repair {repair_ms:.2} ms vs {full_ms:.2} ms full recompute",
            fabric.describe(),
            c.p99_ns as f64 / 1e6,
            rep.fabric.reroutes,
            rep.fabric.reroutes_incremental,
            rep.fabric.restores_incremental,
            rep.timeouts,
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    if std::env::args().any(|a| a == "--churn") {
        run_churn(smoke, telemetry);
        return;
    }
    let (fabric, sessions, object_bytes) = if smoke {
        (Fabric::small(), 4, 128 << 10)
    } else {
        (Fabric::paper(), 8, 1 << 20)
    };
    let sc = FaultScenario::fig1_failure(sessions, object_bytes, 42);
    println!(
        "{} x {} KB 3-replica writes on a {}; busiest core switch fails mid-transfer\n",
        sessions,
        object_bytes >> 10,
        fabric.describe()
    );

    let mut rq_opts = RqRunOptions {
        parallelism: par_flag(),
        shards: shards_flag(),
        ..Default::default()
    };
    if telemetry {
        rq_opts.telemetry = TelemetryOptions::enabled_default();
    }
    let rq = run_fault_rq(&sc, &fabric, &rq_opts);
    let rq_healthy = run_fault_rq(&sc.healthy(), &fabric, &RqRunOptions::default());
    let tcp = run_fault_tcp(&sc, &fabric, &TcpRunOptions::default());
    let tcp_healthy = run_fault_tcp(&sc.healthy(), &fabric, &TcpRunOptions::default());

    println!(
        "victim: core switch {} down at t = {:.2} ms\n",
        rq.victim.0,
        rq.fail_at.expect("faulted run").as_secs_f64() * 1e3
    );
    for (label, faulted, healthy) in [
        ("Polyraptor", &rq, &rq_healthy),
        ("TCP", &tcp, &tcp_healthy),
    ] {
        let curve = RankCurve::new(faulted.flows.iter().map(|f| f.goodput_gbps()).collect());
        println!(
            "  {label:<10} goodput best {:.3} median {:.3} worst {:.3} Gbps",
            curve.at(0),
            curve.median(),
            curve.at(curve.len() - 1)
        );
        println!(
            "  {label:<10} makespan {:.2} ms (healthy {:.2} ms)  timeouts {}  \
             lost-to-fault {}  reroutes {} ({} incremental)  trees repaired {}",
            faulted.makespan().as_secs_f64() * 1e3,
            healthy.makespan().as_secs_f64() * 1e3,
            faulted.timeouts,
            faulted.fabric.lost_to_fault,
            faulted.fabric.reroutes,
            faulted.fabric.reroutes_incremental,
            faulted.fabric.trees_repaired,
        );
        if let Some(rec) = faulted.recovery() {
            println!(
                "  {label:<10} recovery latency p50 {:.2} p99 {:.2} max {:.2} ms \
                 ({} flows in flight at failure)",
                rec.p50_ns as f64 / 1e6,
                rec.p99_ns as f64 / 1e6,
                rec.max_ns as f64 / 1e6,
                rec.flows,
            );
        }
    }

    if let Some(t) = &rq.telemetry {
        write_telemetry(t, "fault");
    }

    // Batch sweep recovery, isolated: the identical Polyraptor run with
    // batching off recovers one symbol per keep-alive sweep.
    let mut legacy_opts = RqRunOptions::default();
    legacy_opts.pr.repull_batch_cap = 0;
    let legacy = run_fault_rq(&sc, &fabric, &legacy_opts);
    let (b, l) = (
        rq.recovery().expect("faulted run").max_ns,
        legacy.recovery().expect("faulted run").max_ns,
    );
    println!(
        "\nbatch sweep recovery: post-fault tail {:.2} ms vs {:.2} ms legacy \
         single-nudge sweep ({:.1}x)",
        b as f64 / 1e6,
        l as f64 / 1e6,
        l as f64 / b as f64,
    );

    // Systematic vs legacy code construction, A/B on the identical fault
    // run: under the counting oracle the code mode touches no packet, so
    // the runs must be indistinguishable — this line is the cheap CI
    // check that flipping the codec default did not perturb the
    // packet-level story.
    let mut legacy_code_opts = RqRunOptions::default();
    legacy_code_opts.pr.code_mode = polyraptor_repro::polyraptor::CodeMode::Legacy;
    let legacy_code = run_fault_rq(&sc, &fabric, &legacy_code_opts);
    assert_eq!(
        legacy_code.makespan(),
        rq.makespan(),
        "code mode must not perturb counting-oracle runs"
    );
    println!(
        "code mode A/B: systematic {:.2} ms vs legacy {:.2} ms makespan (packet-identical)",
        rq.makespan().as_secs_f64() * 1e3,
        legacy_code.makespan().as_secs_f64() * 1e3,
    );

    // Incremental route repair, isolated: the control-plane bill of one
    // link failure on this fabric.
    let (full_ms, repair_ms, rebuilt) = time_reroute(&fabric);
    println!(
        "incremental route repair: {repair_ms:.3} ms ({rebuilt} destination trees rebuilt) \
         vs {full_ms:.3} ms full recompute ({:.1}x)",
        full_ms / repair_ms,
    );

    println!(
        "\nEvery Polyraptor session completes — spraying rides around the blackhole and\n\
         coded repair replaces lost symbols, no timeouts involved; TCP's ECMP-pinned\n\
         flows stall until their (200 ms floor) retransmission timers fire."
    );
}
