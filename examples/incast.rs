//! Incast (Figure 1c): many synchronized senders, one receiver.
//!
//! The classic partition-aggregate pathology: N servers answer a query
//! at the same instant. TCP's losses at the shared switch port plus its
//! 200 ms minimum RTO collapse goodput; Polyraptor's trimming keeps the
//! pull clock alive and any fresh symbol repairs any loss, so goodput
//! stays near line rate — "Incast elimination".
//!
//! ```sh
//! cargo run --release --example incast
//! ```

use polyraptor_repro::workload::{
    run_incast_rq, run_incast_tcp, Fabric, IncastScenario, RqRunOptions, TcpRunOptions,
};

fn main() {
    let fabric = Fabric::small();
    println!("Incast on a 16-host fat-tree, 256 KB striped across N senders:\n");
    println!("  N senders   Polyraptor (Gbps)   TCP (Gbps)");
    for senders in [2usize, 4, 8, 12] {
        let sc = IncastScenario {
            senders,
            block_bytes: 256 << 10,
            seed: 1,
        };
        let rq = run_incast_rq(&sc, &fabric, &RqRunOptions::default());
        let tcp = run_incast_tcp(&sc, &fabric, &TcpRunOptions::default());
        println!("  {senders:>9}   {rq:>17.3}   {tcp:>10.3}");
    }
    println!(
        "\nTCP collapses once the synchronized burst overflows the shallow switch\n\
         buffer (tail losses → 200 ms RTO stalls); Polyraptor never drops — the\n\
         overflow is trimmed to headers and every pull fetches a fresh symbol."
    );
}
