//! Network hotspots (the paper's "current work" §3): what happens when
//! part of the fabric degrades mid-run?
//!
//! 30% of the switch-to-switch links are degraded to 10% of line rate.
//! Per-packet spraying spreads every transfer across all paths, so each
//! one loses only the *average* capacity; per-flow ECMP pins unlucky
//! transfers onto slow paths for their entire lifetime. Path redundancy,
//! embraced vs. ignored.
//!
//! ```sh
//! cargo run --release --example hotspot
//! ```

use polyraptor_repro::netsim::RouteMode;
use polyraptor_repro::workload::{
    run_hotspot_rq, Fabric, HotspotScenario, RankCurve, RqRunOptions,
};

fn main() {
    let sc = HotspotScenario {
        transfers: 8,
        object_bytes: 2 << 20,
        degraded_frac: 0.3,
        degraded_rate_frac: 0.1,
        seed: 11,
    };
    println!("8 x 2MB transfers on a 16-host fat-tree; 30% of fabric links at 10% rate\n");
    for (label, route) in [
        ("spray (Polyraptor)", RouteMode::Spray),
        ("per-flow ECMP", RouteMode::EcmpFlow),
    ] {
        let opts = RqRunOptions {
            route,
            ..Default::default()
        };
        let res = run_hotspot_rq(&sc, &Fabric::small(), &opts);
        let curve = RankCurve::new(res.iter().map(|r| r.goodput_gbps()).collect());
        println!(
            "  {label:<20} best {:.3}  median {:.3}  worst {:.3} Gbps",
            curve.at(0),
            curve.median(),
            curve.at(curve.len() - 1)
        );
    }
    println!(
        "\nSpraying degrades gracefully (every flow sees the average path);\n\
         ECMP craters whichever flows hash onto the hot links."
    );
}
