//! Figure sweeps over fabric shape and routing depth, emitted as CSV:
//!
//! 1. **Leaf–spine oversubscription** — the Figure-1-style 3-replica
//!    write workload with a mid-run spine failure, Polyraptor vs. TCP,
//!    at 1:1 / 2:1 / 4:1 uplink oversubscription.
//! 2. **Jellyfish degree** — a 3-replica fetch workload under a
//!    links-only Poisson fault process (link failures + flaps) as the
//!    random graph's inter-switch degree grows.
//! 3. **Jellyfish layer count** — the same link-fault fetch workload as
//!    the FatPaths-style layer count grows from minimal-only to 4
//!    layers: low minimal path diversity makes single-table routing
//!    blackhole whole flows for the convergence window, while extra
//!    layers give the forwarding plane live alternatives to re-assign
//!    onto.
//!
//! Every run is seeded end to end — identical invocations are
//! byte-identical. CSV goes to stdout (one block per sweep); pass
//! `--out <dir>` to also write `sweep_*.csv` files via `workload::csv`.
//! `--telemetry` additionally records each layer-sweep run and writes
//! `layers{N}_{fabric.csv,ports.csv,trace.json}` (Perfetto-loadable,
//! with layer re-assignment annotations) next to the sweep CSVs —
//! recording never perturbs the seeded results.
//!
//! ```sh
//! cargo run --release --example fabric_sweep            # full scale
//! cargo run --release --example fabric_sweep -- --smoke # quick run
//! cargo run --release --example fabric_sweep -- --out target/figures [--telemetry]
//! cargo run --release --example fabric_sweep -- --par 4 # parallel reroutes
//! ```
//!
//! `--par N` sets the route-computation worker threads (0 = available
//! cores); results stay byte-identical per seed at every setting.
//! `--shards N` does the same for the event loop itself
//! (conservative-window shard workers, 0 = available cores): per-seed
//! sweep rows are identical at every shard count.

use std::path::PathBuf;

use polyraptor_repro::netsim::{FaultMix, RoutingPolicy};
use polyraptor_repro::workload::{
    csv, run_churn_rq, run_fault_rq, run_fault_tcp, ChurnScenario, Fabric, FaultScenario,
    RqRunOptions, TcpRunOptions, TelemetryOptions,
};

/// The Jellyfish layer sweep's fault scenario: links-only churn (link
/// failures + sub-convergence-window flaps) over 3-replica fetches.
fn link_churn(sessions: usize, object_bytes: usize, events: usize, seed: u64) -> ChurnScenario {
    let mut sc = ChurnScenario::ten_event(sessions, object_bytes, seed);
    sc.fault_events = events;
    sc.mix = FaultMix::links_only();
    sc
}

fn emit(out: &Option<PathBuf>, name: &str, header: &[&str], rows: Vec<Vec<f64>>) {
    print!("{}", csv::to_csv(header, rows.clone()));
    println!();
    if let Some(dir) = out {
        let path = dir.join(format!("sweep_{name}.csv"));
        csv::write_csv(&path, header, rows).expect("write sweep CSV");
        println!("# wrote {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let telemetry = args.iter().any(|a| a == "--telemetry");
    // Route-computation worker threads (0 = available cores, 1 =
    // serial). Sweep rows are byte-identical per seed at every setting;
    // the flag only changes reroute wall-clock on large fabrics.
    let par: usize = args
        .iter()
        .position(|a| a == "--par")
        .map(|i| {
            args.get(i + 1)
                .expect("--par takes a thread count")
                .parse()
                .expect("--par takes a thread count")
        })
        .unwrap_or(1);
    // Event-loop shards (0 = available cores, 1 = the serial loop).
    // Like --par, the setting never changes a sweep row — only the
    // event-loop wall-clock on large fabrics.
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .map(|i| {
            args.get(i + 1)
                .expect("--shards takes a shard count")
                .parse()
                .expect("--shards takes a shard count")
        })
        .unwrap_or(1);
    let out: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| PathBuf::from(args.get(i + 1).expect("--out needs a directory")));
    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    // ---- 1. Leaf–spine oversubscription -------------------------------
    let (leaves, spines, hpl, sessions, bytes) = if smoke {
        (4usize, 2usize, 4usize, 4usize, 128 << 10)
    } else {
        (8, 4, 8, 8, 1 << 20)
    };
    println!(
        "# leaf-spine oversubscription sweep: {sessions} x {} KB 3-replica writes,\n\
         # busiest spine fails mid-transfer ({leaves} leaves x {spines} spines x {hpl} hosts)",
        bytes >> 10
    );
    let mut rows = Vec::new();
    for oversub in [1.0f64, 2.0, 4.0] {
        let fabric = Fabric::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf: hpl,
            oversub,
            rate_bps: 1_000_000_000,
            prop_ns: 10_000,
        };
        let sc = FaultScenario::fig1_failure(sessions, bytes, 42);
        let rq_opts = RqRunOptions {
            parallelism: par,
            shards,
            ..Default::default()
        };
        let tcp_opts = TcpRunOptions {
            parallelism: par,
            shards,
            ..Default::default()
        };
        let rq = run_fault_rq(&sc, &fabric, &rq_opts);
        let tcp = run_fault_tcp(&sc, &fabric, &tcp_opts);
        rows.push(vec![
            oversub,
            rq.makespan().as_secs_f64() * 1e3,
            rq.recovery().map_or(0.0, |r| r.max_ns as f64 / 1e6),
            tcp.makespan().as_secs_f64() * 1e3,
            tcp.timeouts as f64,
        ]);
    }
    emit(
        &out,
        "leaf_spine_oversub",
        &[
            "oversub",
            "rq_makespan_ms",
            "rq_recovery_max_ms",
            "tcp_makespan_ms",
            "tcp_timeouts",
        ],
        rows,
    );

    // ---- 2. Jellyfish degree -------------------------------------------
    let (jf_switches, jf_hps, jf_sessions, jf_bytes, jf_events) = if smoke {
        (12usize, 2usize, 6usize, 1 << 20, 10usize)
    } else {
        (16, 3, 10, 2 << 20, 12)
    };
    println!(
        "# jellyfish degree sweep: {jf_sessions} x {} MB 3-replica fetches under\n\
         # {jf_events} links-only Poisson fault events ({jf_switches} switches x {jf_hps} hosts)",
        jf_bytes >> 20
    );
    let mut rows = Vec::new();
    for degree in [3usize, 4, 5] {
        let fabric = Fabric::Jellyfish {
            switches: jf_switches,
            net_degree: degree,
            hosts_per_switch: jf_hps,
            rate_bps: 1_000_000_000,
            prop_ns: 10_000,
            seed: 1,
        };
        let rep = run_churn_rq(
            &link_churn(jf_sessions, jf_bytes, jf_events, 1),
            &fabric,
            &RqRunOptions {
                parallelism: par,
                shards,
                ..Default::default()
            },
        );
        let c = rep.completion();
        rows.push(vec![
            degree as f64,
            c.p50_ns as f64 / 1e6,
            c.p99_ns as f64 / 1e6,
            c.max_ns as f64 / 1e6,
            rep.fabric.lost_to_fault as f64,
        ]);
    }
    emit(
        &out,
        "jellyfish_degree",
        &[
            "net_degree",
            "completion_p50_ms",
            "completion_p99_ms",
            "completion_max_ms",
            "lost_to_fault",
        ],
        rows,
    );

    // ---- 3. Jellyfish layer count --------------------------------------
    // The layered-routing headline: on the deg-4 Jellyfish, minimal-only
    // routing funnels pulls onto few paths, so a link failure blackholes
    // whole flows for the 25 ms convergence window; >= 2 layers give the
    // forwarding plane live alternatives (and flows re-assign away from
    // dead layers), cutting the completion tail.
    // The workload seed decides which links the Poisson process kills;
    // the layering payoff shows when a failure severs a minimal-unique
    // path of an in-flight fetch, so a per-scale seed is pinned to a
    // draw where that happens (runs are byte-identical per seed either
    // way — re-run with other seeds to see the variance).
    let (ls_switches, ls_degree, ls_hps, ls_sessions, ls_bytes, ls_events, ls_seed) = if smoke {
        (12usize, 4usize, 2usize, 6usize, 1 << 20, 10usize, 1u64)
    } else {
        (12, 4, 3, 10, 2 << 20, 12, 6)
    };
    println!(
        "# jellyfish layer sweep: {ls_sessions} x {} MB 3-replica fetches under\n\
         # {ls_events} links-only Poisson fault events \
         ({ls_switches} switches deg {ls_degree} x {ls_hps} hosts)",
        ls_bytes >> 20
    );
    let fabric = Fabric::Jellyfish {
        switches: ls_switches,
        net_degree: ls_degree,
        hosts_per_switch: ls_hps,
        rate_bps: 1_000_000_000,
        prop_ns: 10_000,
        seed: 1,
    };
    let mut rows = Vec::new();
    let mut tails = Vec::new();
    for layers in [1usize, 2, 3, 4] {
        let opts = RqRunOptions {
            policy: RoutingPolicy::layered(layers, 7),
            parallelism: par,
            shards,
            telemetry: if telemetry {
                TelemetryOptions::enabled_default()
            } else {
                TelemetryOptions::default()
            },
            ..Default::default()
        };
        let rep = run_churn_rq(
            &link_churn(ls_sessions, ls_bytes, ls_events, ls_seed),
            &fabric,
            &opts,
        );
        if let Some(t) = &rep.telemetry {
            let dir = out
                .clone()
                .unwrap_or_else(|| PathBuf::from("target/telemetry"));
            let paths = t
                .write_files(&dir, &format!("layers{layers}"))
                .expect("write layer-sweep telemetry");
            println!("# telemetry ({layers} layers): {}", t.describe());
            for p in paths {
                println!("# telemetry: wrote {}", p.display());
            }
        }
        let c = rep.completion();
        tails.push(c.max_ns);
        rows.push(vec![
            layers as f64,
            c.p50_ns as f64 / 1e6,
            c.p99_ns as f64 / 1e6,
            c.max_ns as f64 / 1e6,
            rep.fabric.layer_reassignments as f64,
            rep.fabric.lost_to_fault as f64,
        ]);
    }
    emit(
        &out,
        "jellyfish_layers",
        &[
            "layers",
            "completion_p50_ms",
            "completion_p99_ms",
            "completion_max_ms",
            "layer_reassignments",
            "lost_to_fault",
        ],
        rows,
    );
    let minimal_tail = tails[0];
    let (best_layers, best_tail) = tails
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &t)| (i + 1, t))
        .min_by_key(|&(_, t)| t)
        .expect("layered rows exist");
    println!(
        "# layer sweep summary: minimal-only completion tail {:.2} ms vs {:.2} ms \
         with {} layers ({:.1}x)",
        minimal_tail as f64 / 1e6,
        best_tail as f64 / 1e6,
        best_layers,
        minimal_tail as f64 / best_tail as f64,
    );
}
