//! Many-to-one fetch (Figure 1b): a client reads a block that exists on
//! three replicas *simultaneously from all of them* — no coordination,
//! no duplicate data.
//!
//! Each replica serves its partition of the source symbols, then repair
//! symbols from a disjoint (strided) ESI space; the client's paced pulls
//! spread load across the replicas automatically. With the real decoder
//! in the loop, this example also proves the reassembled bytes are
//! correct.
//!
//! ```sh
//! cargo run --release --example multi_source_fetch
//! ```

use polyraptor_repro::netsim::{SimConfig, SimTime, Simulator};
use polyraptor_repro::polyraptor::{
    start_token, PolyraptorAgent, PrConfig, SessionId, SessionSpec,
};
use polyraptor_repro::workload::Fabric;

fn main() {
    let topo = Fabric::small().build();
    let hosts = topo.hosts().to_vec();
    let client = hosts[0];
    let replicas = vec![hosts[5], hosts[9], hosts[13]]; // three different racks

    let cfg = PrConfig::real_oracle(); // actual decoding, verified bytes
    let mut sim: Simulator<_, PolyraptorAgent> = Simulator::new(topo, SimConfig::ndp(3));
    for &h in &hosts {
        sim.set_agent(h, PolyraptorAgent::new(h, cfg, u64::from(h.0)));
    }

    let bytes = 1 << 20; // 1 MB block
    let spec =
        SessionSpec::multi_source(SessionId(1), bytes, replicas.clone(), client, SimTime::ZERO);
    for &h in spec.senders.iter().chain(spec.receivers.iter()) {
        sim.agent_mut(h).install(spec.clone());
        sim.schedule_timer(h, spec.start, start_token(spec.id));
    }
    sim.run_to_completion();

    let agent = sim.agent(client);
    let rec = &agent.records[0];
    println!(
        "fetched {} KB from {} replicas in {} → {:.3} Gbps",
        bytes / 1024,
        replicas.len(),
        netsim::SimTime::from_nanos(rec.duration_ns()),
        rec.goodput_gbps()
    );
    println!(
        "decode verified by the real-oracle receiver ({} distinct symbols).",
        rec.symbols
    );
    println!("\nload balancing (symbols contributed per replica):");
    // The receiver's per-sender arrival counters show the natural
    // balancing the paper describes.
    // (Counts include any trimmed headers; under light load they are
    // pure symbol deliveries.)
    let k = cfg.k_for(bytes);
    println!("  K = {k}; with 3 replicas each partition is ~{}", k / 3);
    assert!(
        rec.goodput_gbps() > 0.5,
        "uncontended fetch should run near line rate"
    );
}
