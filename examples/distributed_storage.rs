//! Distributed-storage replication (the paper's motivating workload,
//! Figure 1a): a GFS-like client writes 4 MB blocks to three replica
//! servers placed outside its rack, under background traffic.
//!
//! Polyraptor multicasts one copy into the fabric (switches duplicate
//! along sprayed trees); the TCP baseline must push three copies through
//! the client's single access link.
//!
//! ```sh
//! cargo run --release --example distributed_storage
//! ```

use polyraptor_repro::workload::{
    foreground_goodputs, run_storage_rq, run_storage_tcp, Fabric, Pattern, RankCurve, RqRunOptions,
    StorageScenario, TcpRunOptions,
};

fn main() {
    let fabric = Fabric::small(); // 16-host fat-tree; Fabric::paper() = 250 hosts
    let scenario = StorageScenario {
        sessions: 60,
        object_bytes: 4 << 20,
        replicas: 3,
        lambda_per_host: polyraptor_repro::workload::scenario::PAPER_LAMBDA_PER_HOST,
        background_frac: 0.2,
        pattern: Pattern::Write,
        seed: 7,
        normalize_load: true,
        shared_risk_placement: false,
    };

    println!(
        "replicating 60 x 4MB blocks to 3 replicas on a {}-host fat-tree…",
        16
    );

    let rq = run_storage_rq(&scenario, &fabric, &RqRunOptions::default());
    let rq_curve = RankCurve::new(foreground_goodputs(&rq));

    let tcp = run_storage_tcp(&scenario, &fabric, &TcpRunOptions::default());
    let tcp_curve = RankCurve::new(foreground_goodputs(&tcp));

    println!("\nper-replica-flow goodput (Gbps):");
    println!("              best   median    worst");
    println!(
        "  Polyraptor {:>6.3} {:>8.3} {:>8.3}",
        rq_curve.at(0),
        rq_curve.median(),
        rq_curve.at(rq_curve.len() - 1)
    );
    println!(
        "  TCP        {:>6.3} {:>8.3} {:>8.3}",
        tcp_curve.at(0),
        tcp_curve.median(),
        tcp_curve.at(tcp_curve.len() - 1)
    );
    println!(
        "\nTCP multi-unicast is capped near uplink/3 = 0.333 Gbps (it sends 3 copies);\n\
         Polyraptor multicasts one copy and keeps every replica near its fair share."
    );
    assert!(rq_curve.median() > tcp_curve.median());
}
